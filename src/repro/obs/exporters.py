"""Exporters: Chrome ``trace_event`` JSON, Prometheus text, JSON snapshots.

Three stable output formats for the data an :class:`ObsSession`
records:

* :func:`chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev (open the page,
  drag the JSON in).  Spans become complete (``"ph": "X"``) events,
  zero-length spans become instants, and each run gets its own ``pid``
  with readable process/thread name metadata.
* :func:`prometheus_text` — the text exposition format, so a snapshot
  can be diffed, scraped from a file, or pushed to a gateway.
* :func:`write_metrics_json` — the stable JSON snapshot schema
  (``repro.obs.metrics/1``) that the bench regression gate
  (:mod:`repro.obs.compare`) consumes.

All writers serialise with sorted keys and fixed separators:
same-seed runs produce byte-identical files.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional

from repro.obs.session import METRICS_SCHEMA
from repro.obs.tracing import MASTER_TID

#: Simulated seconds → trace-event microseconds.
_US = 1e6


def dumps_deterministic(obj: Any) -> str:
    """Canonical JSON: sorted keys, fixed separators, trailing newline."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


def _write(path: str, text: str) -> str:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text)
    return path


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------


def _thread_name(tid: int) -> str:
    return "master" if tid == MASTER_TID else f"worker-{tid}"


def chrome_trace_events(run: Dict[str, Any], pid: int = 0) -> List[Dict[str, Any]]:
    """Trace events for one run snapshot, under process id ``pid``."""
    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": run.get("name") or f"run-{pid}"},
        }
    ]
    tids = sorted({span["tid"] for span in run.get("spans", ())})
    for tid in tids:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": _thread_name(tid)},
            }
        )
    for span in run.get("spans", ()):
        args: Dict[str, Any] = {"span_id": span["id"]}
        if "parent" in span:
            args["parent_span_id"] = span["parent"]
        args.update(span.get("args", {}))
        start = span["start"]
        end = span["end"] if span["end"] is not None else start
        base = {
            "name": span["name"],
            "cat": span["cat"],
            "pid": pid,
            "tid": span["tid"],
            "ts": start * _US,
            "args": args,
        }
        if end > start:
            base["ph"] = "X"
            base["dur"] = (end - start) * _US
        else:
            base["ph"] = "i"
            base["s"] = "t"  # thread-scoped instant
        events.append(base)
    return events


def chrome_trace(runs: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Full trace document: one ``pid`` per run, loadable in Perfetto."""
    events: List[Dict[str, Any]] = []
    for pid, run in enumerate(runs):
        events.extend(chrome_trace_events(run, pid=pid))
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, runs: Iterable[Dict[str, Any]]) -> str:
    return _write(path, dumps_deterministic(chrome_trace(runs)))


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def _prom_name(key: str) -> str:
    """``net.messages{type="X"}`` → ``net_messages{type="X"}``."""
    name, brace, labels = key.partition("{")
    return name.replace(".", "_") + brace + labels


def _fmt(value: float) -> str:
    """Render integers without the trailing ``.0`` (Prometheus style)."""
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(metrics: Dict[str, Any]) -> str:
    """Text exposition of one metrics snapshot (sorted, deterministic)."""
    lines: List[str] = []
    seen_types: set = set()

    def type_line(key: str, kind: str) -> None:
        base = _prom_name(key).partition("{")[0]
        if base not in seen_types:
            seen_types.add(base)
            lines.append(f"# TYPE {base} {kind}")

    for key, value in metrics.get("counters", {}).items():
        type_line(key, "counter")
        lines.append(f"{_prom_name(key)} {_fmt(value)}")
    for key, value in metrics.get("gauges", {}).items():
        type_line(key, "gauge")
        lines.append(f"{_prom_name(key)} {_fmt(value)}")
    for key, hist in metrics.get("histograms", {}).items():
        base, brace, labels = _prom_name(key).partition("{")
        labels = labels[:-1] if brace else ""  # strip trailing }
        type_line(key, "histogram")
        cumulative = 0
        for bound, count in zip(hist["buckets"], hist["counts"]):
            cumulative += count
            sep = "," if labels else ""
            lines.append(
                f'{base}_bucket{{{labels}{sep}le="{_fmt(float(bound))}"}} {cumulative}'
            )
        cumulative += hist["counts"][-1]
        sep = "," if labels else ""
        lines.append(f'{base}_bucket{{{labels}{sep}le="+Inf"}} {cumulative}')
        suffix = "{" + labels + "}" if labels else ""
        lines.append(f"{base}_sum{suffix} {_fmt(hist['sum'])}")
        lines.append(f"{base}_count{suffix} {hist['count']}")
    return "\n".join(lines) + "\n"


def write_prometheus(path: str, metrics: Dict[str, Any]) -> str:
    return _write(path, prometheus_text(metrics))


# ----------------------------------------------------------------------
# JSON metrics snapshot (the regression gate's input)
# ----------------------------------------------------------------------


def metrics_document(runs: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Stable JSON document: per-run metrics + span counts, no spans."""
    runs = list(runs)
    return {
        "schema": METRICS_SCHEMA,
        "runs": [
            {
                "name": run.get("name", ""),
                "labels": run.get("labels", {}),
                "meta": run.get("meta", {}),
                "metrics": run["metrics"],
                "num_spans": len(run.get("spans", ())),
                "spans_dropped": run.get("spans_dropped", 0),
            }
            for run in runs
        ],
    }


def write_metrics_json(path: str, runs: Iterable[Dict[str, Any]]) -> str:
    return _write(path, dumps_deterministic(metrics_document(runs)))
