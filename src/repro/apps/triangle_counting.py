"""Triangle counting (TC) on G-Miner.

The lightest of the five workloads (§8.1): each task needs exactly one
round.  The task seeded at ``v`` pulls the adjacency of its higher-ID
neighbours and counts triangles ``v < u < w``; summing per-task counts
gives the exact global count.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.api import GMinerApp
from repro.core.task import Task, TaskEnv
from repro.graph.graph import VertexData
from repro.mining.triangles import triangles_for_seed


class TCTask(Task):
    """One-round task: count triangles whose minimum vertex is the seed."""

    def __init__(self, seed: VertexData) -> None:
        super().__init__(seed)
        higher = [u for u in seed.neighbors if u > seed.vid]
        self.pull(higher)

    def update(self, cand_objs: Dict[int, VertexData], env: TaskEnv) -> None:
        neighbor_adjacency = {
            vid: data.neighbors_array() for vid, data in cand_objs.items()
        }
        count = triangles_for_seed(
            self.seed.vid, self.seed.neighbors_array(), neighbor_adjacency, meter=self
        )
        self.subgraph.add_nodes(neighbor_adjacency)
        self.finish(count)


class TriangleCountingApp(GMinerApp):
    """Exact triangle counting; the job value is the global count."""

    name = "tc"

    def make_task(self, vertex: VertexData) -> Optional[Task]:
        # a seed needs at least two higher neighbours to close a triangle
        higher = [u for u in vertex.neighbors if u > vertex.vid]
        if len(higher) < 2:
            return None
        return TCTask(vertex)

    def combine_results(self, results) -> int:
        return sum(r for r in results if r is not None)
