"""The optimised single-threaded baseline (paper Table 1, Figure 7).

Runs each workload's sequential kernel on one simulated core at full
speed: elapsed time = work units / core speed, CPU utilisation 100%,
zero network.  This is the yardstick for the COST metric [19]: the
number of cores a distributed system needs to beat it.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.baselines.common import GraphView, make_result
from repro.core.job import JobResult, JobStatus
from repro.graph.graph import Graph
from repro.mining.clustering import FocusParams, focused_clustering_sequential
from repro.mining.cliques import max_clique_sequential
from repro.mining.community import CommunityParams, community_detection_sequential
from repro.mining.cost import Budget, BudgetExceeded, WorkMeter
from repro.mining.matching import graph_matching_sequential
from repro.mining.patterns import PAPER_PATTERN, TreePattern
from repro.mining.triangles import triangle_count_sequential
from repro.sim.cluster import DEFAULT_CORE_SPEED


class SingleThreadSystem:
    """Sequential reference implementation of all five workloads."""

    name = "single-thread"

    def __init__(
        self,
        core_speed: float = DEFAULT_CORE_SPEED,
        time_limit: Optional[float] = None,
    ) -> None:
        self.core_speed = core_speed
        self.time_limit = time_limit

    def _meter(self) -> WorkMeter:
        if self.time_limit is None:
            return WorkMeter()
        return Budget(limit=self.time_limit * self.core_speed)

    def run(
        self,
        app: str,
        graph: Graph,
        pattern: TreePattern = PAPER_PATTERN,
        community_params: Optional[CommunityParams] = None,
        focus_params: Optional[FocusParams] = None,
        exemplars: Sequence[int] = (),
    ) -> JobResult:
        """Run workload ``app`` ('tc'|'mcf'|'gm'|'cd'|'gc') sequentially."""
        view = GraphView.of(graph)
        meter = self._meter()
        value: Any = None
        status = JobStatus.OK
        try:
            if app == "tc":
                value = triangle_count_sequential(view.adjacency, meter)
            elif app == "mcf":
                value = max_clique_sequential(view.adjacency, meter)
            elif app == "gm":
                value = graph_matching_sequential(
                    pattern, view.labels, view.adjacency, meter
                )
            elif app == "cd":
                value = community_detection_sequential(
                    community_params or CommunityParams(),
                    view.attributes,
                    view.adjacency,
                    meter,
                )
            elif app == "gc":
                value = focused_clustering_sequential(
                    exemplars,
                    focus_params or FocusParams(),
                    view.attributes,
                    view.adjacency,
                    meter,
                )
            else:
                raise ValueError(f"unknown workload {app!r}")
        except BudgetExceeded:
            status = JobStatus.TIMEOUT
        elapsed = meter.units / self.core_speed
        if status is JobStatus.TIMEOUT and self.time_limit is not None:
            elapsed = self.time_limit
        # memory: the whole graph plus small working state, one machine
        peak_memory = graph.estimate_size() + (1 << 16)
        return make_result(
            status=status,
            app_name=app,
            value=value,
            total_seconds=elapsed,
            cpu_utilization=1.0,
            peak_memory_bytes=peak_memory,
            network_bytes=0,
            stats={"work_units": meter.units},
        )
