"""Metamorphic oracle suite (repro.verify.metamorphic).

No external ground truth needed: each test states a transformation of
the *input* under which the mining *result* must be invariant —

* relabelling vertices (graph isomorphism),
* changing how the graph is partitioned,
* changing the cluster shape (workers, cores),
* injecting recoverable faults.

A violation of any of these is a real bug by construction, whatever the
"correct" answer happens to be.
"""

import pytest

from repro.apps import (
    CommunityDetectionApp,
    GraphMatchingApp,
    MaxCliqueApp,
    TriangleCountingApp,
)
from repro.core import GMinerJob, JobStatus
from repro.sim.failures import FailurePlan
from repro.verify.metamorphic import (
    monotone_relabel,
    normalize_value,
    permute_graph,
)
from tests.conftest import make_cluster_config, make_clustered_graph

pytestmark = pytest.mark.metamorphic


def run(app, graph, **overrides):
    plan = overrides.pop("failure_plan", None)
    config = make_cluster_config(**overrides)
    result = GMinerJob(app, graph, config, failure_plan=plan).run()
    assert result.status is JobStatus.OK
    return result


class TestVertexRelabelling:
    """An isomorphic graph must yield the isomorphic result."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_triangle_count_invariant(self, seed):
        graph = make_clustered_graph(n=80)
        base = run(TriangleCountingApp(), graph)
        permuted, _ = permute_graph(graph, seed=seed)
        relabelled = run(TriangleCountingApp(), permuted)
        assert relabelled.value == base.value

    def test_matching_count_invariant(self):
        graph = make_clustered_graph(n=80, labeled=True)
        base = run(GraphMatchingApp(), graph)
        permuted, _ = permute_graph(graph, seed=5)
        relabelled = run(GraphMatchingApp(), permuted)
        assert relabelled.value == base.value

    def test_max_clique_size_invariant(self):
        graph = make_clustered_graph(n=80)
        base = run(MaxCliqueApp(), graph)
        permuted, _ = permute_graph(graph, seed=5)
        relabelled = run(MaxCliqueApp(), permuted)
        assert normalize_value("mcf", relabelled.value) == normalize_value(
            "mcf", base.value
        )

    def test_communities_map_through_relabelling(self):
        # CD growth is anchored at each community's minimum vertex id
        # and breaks ties by id, so only *order-preserving* relabellings
        # leave its result invariant (arbitrary permutations change the
        # seed anchoring, and with it the attribute filter).
        from repro.graph.datasets import load_dataset

        graph = load_dataset("dblp-s").graph
        base = run(CommunityDetectionApp(), graph)
        relabelled_graph, mapping = monotone_relabel(graph)
        relabelled = run(CommunityDetectionApp(), relabelled_graph)
        inverse = {v: k for k, v in mapping.items()}
        assert normalize_value(
            "cd", relabelled.value, mapping=inverse
        ) == normalize_value("cd", base.value)


class TestClusterShape:
    """The cluster is an execution detail, not part of the problem."""

    @pytest.mark.parametrize("num_nodes", [1, 2, 6])
    def test_worker_count_invariant(self, num_nodes):
        graph = make_clustered_graph(n=80)
        base = run(TriangleCountingApp(), graph)
        varied = run(TriangleCountingApp(), graph, num_nodes=num_nodes)
        assert varied.value == base.value
        assert varied.num_results == base.num_results

    @pytest.mark.parametrize("cores", [1, 4])
    def test_core_count_invariant(self, cores):
        graph = make_clustered_graph(n=80)
        base = run(TriangleCountingApp(), graph)
        varied = run(TriangleCountingApp(), graph, cores_per_node=cores)
        assert varied.value == base.value

    def test_partitioner_invariant(self):
        graph = make_clustered_graph(n=80, labeled=True)
        bdg = run(GraphMatchingApp(), graph, partitioner="bdg")
        hashed = run(GraphMatchingApp(), graph, partitioner="hash")
        assert bdg.value == hashed.value
        assert bdg.num_results == hashed.num_results


class TestFaultInjection:
    """Recoverable faults must not change what gets mined."""

    @pytest.mark.parametrize("seed", [11, 23])
    def test_kill_and_loss_invariant(self, seed):
        graph = make_clustered_graph(n=80)
        base = run(TriangleCountingApp(), graph)
        plan = (
            FailurePlan(seed=seed)
            .kill(seed % 4, at_time=0.04, recovery_delay=0.05)
            .lossy(0.08)
        )
        degraded = run(
            TriangleCountingApp(), graph,
            failure_plan=plan, checkpoint_interval=0.02, time_limit=120.0,
        )
        assert degraded.value == base.value
        assert degraded.num_results == base.num_results

    def test_faults_compose_with_permutation(self):
        """Both transformations at once: the strongest single check."""
        graph = make_clustered_graph(n=80)
        base = run(TriangleCountingApp(), graph)
        permuted, _ = permute_graph(graph, seed=3)
        plan = FailurePlan(seed=3).kill(1, at_time=0.04, recovery_delay=0.05)
        degraded = run(
            TriangleCountingApp(), permuted,
            failure_plan=plan, checkpoint_interval=0.02, time_limit=120.0,
        )
        assert degraded.value == base.value
