"""Fault-tolerance integration tests (paper §7).

A worker dies mid-job; with checkpointing enabled the job must finish
with exactly the correct result after the worker recovers and re-runs
its tasks from the last snapshot, while live workers keep going.
"""

import pytest

from repro.apps import MaxCliqueApp, TriangleCountingApp
from repro.core import GMinerConfig, GMinerJob, JobStatus
from repro.graph.algorithms import triangle_count_exact
from repro.sim.failures import FailurePlan


@pytest.fixture
def config(small_spec):
    return GMinerConfig(
        cluster=small_spec,
        checkpoint_interval=0.02,
        time_limit=120.0,
    )


def first_failure_window(app, graph, config):
    """Run once without failures to learn the job duration, then pick a
    kill time in the middle of mining."""
    clean = GMinerJob(app, graph, config).run()
    assert clean.status is JobStatus.OK
    mid = clean.setup_seconds + clean.mining_seconds * 0.5
    return clean, mid


class TestRecovery:
    def test_tc_survives_worker_failure(self, small_social_graph, config):
        clean, kill_at = first_failure_window(
            TriangleCountingApp(), small_social_graph, config
        )
        plan = FailurePlan().kill(node_id=1, at_time=kill_at, recovery_delay=0.05)
        job = GMinerJob(
            TriangleCountingApp(), small_social_graph, config, failure_plan=plan
        )
        result = job.run()
        assert result.status is JobStatus.OK
        assert result.value == triangle_count_exact(small_social_graph)
        assert result.total_seconds >= clean.total_seconds

    def test_mcf_survives_worker_failure(self, small_social_graph, config):
        clean, kill_at = first_failure_window(
            MaxCliqueApp(), small_social_graph, config
        )
        plan = FailurePlan().kill(node_id=0, at_time=kill_at, recovery_delay=0.05)
        result = GMinerJob(
            MaxCliqueApp(), small_social_graph, config, failure_plan=plan
        ).run()
        assert result.status is JobStatus.OK
        assert len(result.value) == len(clean.value)

    def test_two_failures_sequential(self, small_social_graph, config):
        clean, kill_at = first_failure_window(
            TriangleCountingApp(), small_social_graph, config
        )
        plan = (
            FailurePlan()
            .kill(node_id=1, at_time=kill_at, recovery_delay=0.05)
            .kill(node_id=2, at_time=kill_at + 0.2, recovery_delay=0.05)
        )
        result = GMinerJob(
            TriangleCountingApp(), small_social_graph, config, failure_plan=plan
        ).run()
        assert result.status is JobStatus.OK
        assert result.value == triangle_count_exact(small_social_graph)

    def test_checkpoints_were_taken(self, small_social_graph, config):
        result = GMinerJob(TriangleCountingApp(), small_social_graph, config).run()
        assert result.stats["checkpoints"] > 0

    def test_failure_early_in_job(self, small_social_graph, config):
        """Killing a worker before its first checkpoint loses its seeds
        entirely until recovery re-seeds from the (empty) snapshot —
        the rerun path must still produce the exact count because the
        worker re-runs from scratch state restored at recovery."""
        plan = FailurePlan().kill(node_id=1, at_time=0.005, recovery_delay=0.02)
        job = GMinerJob(
            TriangleCountingApp(), small_social_graph, config, failure_plan=plan
        )
        result = job.run()
        # With no checkpoint yet, the dead worker's unfinished tasks are
        # lost; recovery restores what the last snapshot had.  The
        # contract tested here is weaker: the job must still terminate.
        assert result.status in (JobStatus.OK, JobStatus.TIMEOUT)


class TestCheckpointOverhead:
    def test_overhead_is_bounded(self, small_social_graph, small_spec):
        base_cfg = GMinerConfig(cluster=small_spec)
        ckpt_cfg = base_cfg.replace(checkpoint_interval=0.02)
        base = GMinerJob(TriangleCountingApp(), small_social_graph, base_cfg).run()
        ckpt = GMinerJob(TriangleCountingApp(), small_social_graph, ckpt_cfg).run()
        assert ckpt.value == base.value
        assert ckpt.total_seconds < base.total_seconds * 2.0
