"""Chaos harness (paper §7): seeded random fault schedules.

Each seed expands into a random schedule of node kills (always leaving
at least one live worker and always recovering), link loss, message
duplication, reordering, slow links and healed partition windows.  The
invariants under every schedule:

* the job completes (no hang, no OOM),
* mining results equal the fault-free run exactly — same value, same
  number of results (no task lost, none double-counted),
* identical seeds produce identical degraded timelines.

The seed count scales with ``REPRO_CHAOS_SEEDS`` (default 20) so CI can
dial coverage up without touching the code.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.apps import GraphMatchingApp, MaxCliqueApp, TriangleCountingApp
from repro.core import GMinerJob, JobStatus
from repro.sim.failures import FailurePlan
from tests.conftest import make_cluster_config, make_clustered_graph

NUM_NODES = 4
CHAOS_SEEDS = int(os.environ.get("REPRO_CHAOS_SEEDS", "20"))

pytestmark = pytest.mark.chaos


def make_graph(labeled: bool = False):
    return make_clustered_graph(labeled=labeled)


def make_config():
    return make_cluster_config(
        num_nodes=NUM_NODES, checkpoint_interval=0.02, time_limit=120.0
    )


_BASELINES = {}


def baseline(app_factory, labeled: bool = False):
    """Fault-free run of ``app_factory`` (cached per app class)."""
    key = app_factory
    if key not in _BASELINES:
        result = GMinerJob(
            app_factory(), make_graph(labeled=labeled), make_config()
        ).run()
        assert result.status is JobStatus.OK
        _BASELINES[key] = result
    return _BASELINES[key]


def random_plan(seed: int, clean) -> FailurePlan:
    """Expand ``seed`` into a random fault schedule.

    Kills never overlap in a way that could leave zero live workers
    (at most two victims out of four, recovery always scheduled), and
    every partition window heals, so recovery is always possible.
    """
    rng = random.Random(seed)
    plan = FailurePlan(seed=seed)
    dur = clean.mining_seconds
    for victim in rng.sample(range(NUM_NODES), rng.randint(1, 2)):
        plan.kill(
            victim,
            at_time=clean.setup_seconds + rng.uniform(0.2, 0.9) * dur,
            recovery_delay=rng.uniform(0.05, 0.2),
        )
    if rng.random() < 0.7:
        plan.lossy(rng.uniform(0.02, 0.15))
    if rng.random() < 0.5:
        plan.duplicating(rng.uniform(0.02, 0.2))
    if rng.random() < 0.5:
        plan.reordering(rng.uniform(0.05, 0.3), delay=0.002)
    if rng.random() < 0.4:
        plan.slow_link(rng.uniform(1.5, 4.0), src=rng.randrange(NUM_NODES))
    if rng.random() < 0.4:
        a, b = rng.sample(range(NUM_NODES), 2)
        start = clean.setup_seconds + rng.uniform(0.1, 0.5) * dur
        plan.partition(src=a, dst=b, start=start, end=start + rng.uniform(0.02, 0.08))
        plan.partition(src=b, dst=a, start=start, end=start + rng.uniform(0.02, 0.08))
    return plan


def fingerprint(result):
    """Everything that must be identical for two runs to count as the
    same timeline: results, finish time, traffic, every counter."""
    value = result.value
    if isinstance(value, (set, frozenset)):
        value = tuple(sorted(value))
    return (
        result.status.value,
        value,
        result.num_results,
        result.total_seconds,
        result.network_bytes,
        tuple(sorted(result.stats.items())),
    )


class TestChaosTriangleCounting:
    @pytest.mark.parametrize("seed", range(CHAOS_SEEDS))
    def test_results_exact_under_chaos(self, seed):
        clean = baseline(TriangleCountingApp)
        plan = random_plan(seed, clean)
        result = GMinerJob(
            TriangleCountingApp(), make_graph(), make_config(), failure_plan=plan
        ).run()
        assert result.status is JobStatus.OK
        # bit-identical mining outcome: no task lost, none double-counted
        assert result.value == clean.value
        assert result.num_results == clean.num_results


class TestChaosOtherWorkloads:
    @pytest.mark.parametrize("seed", [1, 7])
    def test_max_clique_size_under_chaos(self, seed):
        # MCF's witness clique is schedule-dependent: a re-run of the
        # discovering task can be pruned by the very bound it published
        # before the crash.  The *size* — the aggregated bound, held
        # durably at the master once reported — is schedule-invariant.
        clean = baseline(MaxCliqueApp)
        plan = random_plan(seed, clean)
        result = GMinerJob(
            MaxCliqueApp(), make_graph(), make_config(), failure_plan=plan
        ).run()
        assert result.status is JobStatus.OK
        assert result.aggregated == clean.aggregated
        assert len(result.value) <= clean.aggregated

    @pytest.mark.parametrize("seed", [3])
    def test_graph_matching_exact_under_chaos(self, seed):
        clean = baseline(GraphMatchingApp, labeled=True)
        plan = random_plan(seed, clean)
        result = GMinerJob(
            GraphMatchingApp(),
            make_graph(labeled=True),
            make_config(),
            failure_plan=plan,
        ).run()
        assert result.status is JobStatus.OK
        assert result.value == clean.value
        assert result.num_results == clean.num_results


class TestChaosDeterminism:
    @pytest.mark.parametrize("seed", [0, 5, 13])
    def test_identical_seeds_identical_timelines(self, seed):
        clean = baseline(TriangleCountingApp)
        runs = [
            GMinerJob(
                TriangleCountingApp(),
                make_graph(),
                make_config(),
                failure_plan=random_plan(seed, clean),
            ).run()
            for _ in range(2)
        ]
        assert fingerprint(runs[0]) == fingerprint(runs[1])

    def test_different_seeds_differ(self):
        # sanity: the schedule generator actually varies with the seed
        clean = baseline(TriangleCountingApp)
        a = random_plan(0, clean)
        b = random_plan(1, clean)
        assert (a.events, a.link_faults) != (b.events, b.link_faults)


class TestChaosAccounting:
    def test_no_task_lost_or_double_counted(self):
        clean = baseline(TriangleCountingApp)
        plan = random_plan(2, clean)
        job = GMinerJob(
            TriangleCountingApp(), make_graph(), make_config(), failure_plan=plan
        )
        result = job.run()
        assert result.status is JobStatus.OK
        # every worker drained: nothing live, nothing buffered
        for worker in job.workers:
            assert not worker.live_tasks
            assert not worker.task_buffer
            assert not worker.cmq
        # the result set is exactly the fault-free one
        assert result.num_results == clean.num_results
        assert result.value == clean.value
