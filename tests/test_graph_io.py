"""Unit tests for graph text I/O (the HDFS line format)."""

import io

import pytest

from repro.graph.graph import Graph, VertexData
from repro.graph.io import (
    dump_adjacency_text,
    format_vertex_line,
    graph_to_lines,
    load_adjacency_text,
    parse_vertex_line,
)


class TestParse:
    def test_plain_vertex(self):
        data = parse_vertex_line("3\t1 2 5")
        assert data.vid == 3
        assert data.neighbors == (1, 2, 5)
        assert data.label is None
        assert data.attributes == ()

    def test_neighbors_sorted_on_parse(self):
        assert parse_vertex_line("0\t5 2 9").neighbors == (2, 5, 9)

    def test_label_field(self):
        assert parse_vertex_line("1\t2\tL=a").label == "a"

    def test_attribute_field(self):
        assert parse_vertex_line("1\t2\tA=10,20,30").attributes == (10, 20, 30)

    def test_all_fields(self):
        data = parse_vertex_line("7\t1 3\tL=x\tA=5")
        assert (data.vid, data.neighbors, data.label, data.attributes) == (
            7, (1, 3), "x", (5,),
        )

    def test_isolated_vertex(self):
        assert parse_vertex_line("9\t").neighbors == ()

    def test_empty_line_rejected(self):
        with pytest.raises(ValueError):
            parse_vertex_line("   ")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError):
            parse_vertex_line("1\t2\tZ=9")

    def test_bare_id_is_isolated_vertex(self):
        assert parse_vertex_line("1").neighbors == ()

    def test_non_integer_id_rejected(self):
        with pytest.raises(ValueError):
            parse_vertex_line("abc\t1 2")


class TestRoundTrip:
    def test_format_then_parse(self):
        original = VertexData(vid=4, neighbors=(1, 2), label="q", attributes=(8, 9))
        assert parse_vertex_line(format_vertex_line(original)) == original

    def test_graph_round_trip(self, tiny_graph):
        tiny_graph.set_label(0, "a")
        tiny_graph.set_attributes(1, [100, 200])
        buffer = io.StringIO()
        dump_adjacency_text(tiny_graph, buffer)
        loaded = load_adjacency_text(io.StringIO(buffer.getvalue()))
        assert loaded.num_vertices == tiny_graph.num_vertices
        assert loaded.num_edges == tiny_graph.num_edges
        assert loaded.label(0) == "a"
        assert loaded.attributes(1) == (100, 200)

    def test_file_round_trip(self, tiny_graph, tmp_path):
        path = str(tmp_path / "graph.txt")
        dump_adjacency_text(tiny_graph, path)
        loaded = load_adjacency_text(path)
        assert loaded.num_edges == tiny_graph.num_edges

    def test_load_symmetrises_partial_lists(self):
        # u lists v but v omits u: the edge must still exist
        loaded = load_adjacency_text(["0\t1", "1\t"])
        assert loaded.has_edge(0, 1)

    def test_graph_to_lines(self, tiny_graph):
        lines = graph_to_lines(tiny_graph)
        assert len(lines) == tiny_graph.num_vertices
        reloaded = load_adjacency_text(lines)
        assert reloaded.num_edges == tiny_graph.num_edges

    def test_blank_lines_skipped(self):
        loaded = load_adjacency_text(["0\t1", "", "1\t0", "   "])
        assert loaded.num_vertices == 2
