"""Environment metadata for bench exports.

Every ``BENCH_*.json`` records *where* its numbers were measured —
python/numpy versions, CPU count, platform — so a perf trajectory is
attributable: a wall-clock regression on a 1-core CI runner is a very
different fact from one on a 16-core workstation.  The regression gate
(:mod:`repro.obs.compare`) never compares these keys; they exist for
humans (and dashboards) reading the JSON.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any, Dict


def environment_metadata() -> Dict[str, Any]:
    """Host/interpreter facts worth stamping on a bench export.

    ``numpy`` is ``None`` when the optional dependency is absent —
    exactly the configurations the kernels fall back to pure python,
    which a reader comparing wall-clock numbers needs to know.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
        "platform": sys.platform,
        "machine": platform.machine(),
    }
