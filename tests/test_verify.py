"""Tests for the runtime invariant checker (repro.verify).

The contract, in order of importance:

* read-only: arming the monitor changes no simulated quantity — the
  full chaos fingerprint of a run is byte-identical with it on or off;
* zero overhead off: a run without verification allocates no monitors
  and no window records;
* a planted accounting bug (a core pool charging more work than the
  worker performed) is caught at the next barrier check;
* violations carry a structured, JSON-able repro window.
"""

import types

import pytest

from repro.apps import TriangleCountingApp
from repro.bench.runner import run
from repro.core import GMinerConfig, GMinerJob, JobStatus
from repro.sim.cluster import ClusterSpec
from repro.sim.cpu import CorePool
from repro.verify import (
    InvariantMonitor,
    InvariantViolation,
    allocation_counts,
    verify_env_enabled,
)
from tests.conftest import make_cluster_config, make_clustered_graph

SPEC = ClusterSpec(num_nodes=4, cores_per_node=2)


def run_tc(**overrides):
    return run(workload="tc", dataset="skitter-s", spec=SPEC,
               time_limit=None, **overrides)


def fingerprint(result):
    value = result.value
    if isinstance(value, (set, frozenset)):
        value = tuple(sorted(value))
    return (
        result.status.value,
        value,
        result.num_results,
        result.total_seconds,
        result.network_bytes,
        result.peak_memory_bytes,
        tuple(sorted(result.stats.items())),
    )


# ----------------------------------------------------------------------
# monitor unit behaviour
# ----------------------------------------------------------------------


class TestMonitorUnit:
    def test_clock_monotonicity_violation(self):
        monitor = InvariantMonitor()
        monitor.on_sim_event(0.0, 1.0)
        with pytest.raises(InvariantViolation) as exc:
            monitor.on_sim_event(1.0, 0.5)
        assert exc.value.invariant == "clock-monotonic"

    def test_message_books_balance(self):
        monitor = InvariantMonitor()
        network = types.SimpleNamespace(messages_sent=2)
        message = types.SimpleNamespace(src=0, dst=1)
        for _ in range(2):
            monitor.on_net_offered(0, 1, "payload")
            monitor.on_net_accepted(1)
        monitor.on_net_settled(message, delivered=True)
        monitor.check_network(network)  # one delivered, one in flight
        monitor.on_net_settled(message, delivered=True)
        monitor.check_network(network)
        assert monitor.net_delivered == 2
        assert monitor.net_inflight == 0

    def test_duplicates_appear_on_offered_side(self):
        monitor = InvariantMonitor()
        network = types.SimpleNamespace(messages_sent=1)
        message = types.SimpleNamespace(src=0, dst=1)
        monitor.on_net_offered(0, 1, "payload")
        monitor.on_net_accepted(2)  # original + one fault-injected copy
        monitor.on_net_settled(message, delivered=True)
        monitor.on_net_settled(message, delivered=True)
        monitor.check_network(network)
        assert monitor.net_duplicated == 1

    def test_unbalanced_books_raise(self):
        monitor = InvariantMonitor()
        network = types.SimpleNamespace(messages_sent=1)
        monitor.on_net_offered(0, 1, "payload")
        # never accepted, never dropped: the ledger cannot balance
        with pytest.raises(InvariantViolation) as exc:
            monitor.check_network(network)
        assert exc.value.invariant == "message-conservation"

    def test_settle_without_accept_raises(self):
        monitor = InvariantMonitor()
        message = types.SimpleNamespace(src=0, dst=1)
        with pytest.raises(InvariantViolation):
            monitor.on_net_settled(message, delivered=True)

    def test_dropped_by_reason_ledger(self):
        monitor = InvariantMonitor()
        monitor.on_net_offered(0, 1, "x")
        monitor.on_net_dropped("endpoint_down", 0, 1)
        monitor.on_net_offered(0, 1, "x")
        monitor.on_net_dropped("link_fault", 0, 1)
        network = types.SimpleNamespace(messages_sent=1)
        monitor.check_network(network)
        assert monitor.net_dropped == {"endpoint_down": 1, "link_fault": 1}

    def test_negative_work_raises(self):
        monitor = InvariantMonitor()
        with pytest.raises(InvariantViolation):
            monitor.on_work(-1.0, "test")

    def test_work_conservation_mismatch_raises(self):
        monitor = InvariantMonitor()
        monitor.on_work(5.0, "test")
        nodes = [types.SimpleNamespace(cores=types.SimpleNamespace(total_work_units=6.0))]
        with pytest.raises(InvariantViolation) as exc:
            monitor.check_work(nodes)
        assert exc.value.invariant == "work-conservation"

    def test_kernel_work_cannot_exceed_charged(self):
        monitor = InvariantMonitor()
        monitor.on_work(5.0, "test")
        monitor.kernel_batch("intersect_count_many", 6.0)
        nodes = [types.SimpleNamespace(cores=types.SimpleNamespace(total_work_units=5.0))]
        with pytest.raises(InvariantViolation) as exc:
            monitor.check_work(nodes)
        assert exc.value.invariant == "kernel-metering"

    def test_violation_carries_structured_window(self):
        monitor = InvariantMonitor(clock=lambda: 1.5, window=2)
        monitor.record("site-a", "event one")
        monitor.record("site-b", "event two")
        monitor.record("site-c", "event three")  # evicts event one
        with pytest.raises(InvariantViolation) as exc:
            monitor.fail("test-invariant", "boom", site="here",
                         observed=1, expected=2)
        violation = exc.value
        assert violation.invariant == "test-invariant"
        assert violation.time == 1.5
        assert len(violation.window) == 2
        assert violation.window[0][1] == "site-b"
        doc = violation.to_dict()
        assert doc["invariant"] == "test-invariant"
        assert [w["site"] for w in doc["window"]] == ["site-b", "site-c"]
        import json

        json.dumps(doc)  # plain primitives only

    def test_summary_counters(self):
        monitor = InvariantMonitor()
        monitor.on_net_offered(0, 1, "x")
        monitor.on_net_accepted(1)
        monitor.on_work(2.0, "test")
        summary = monitor.summary()
        assert summary["net_offered"] == 1
        assert summary["net_inflight"] == 1
        assert summary["work_performed"] == 2.0

    def test_env_toggle(self):
        assert verify_env_enabled({"REPRO_VERIFY": "1"})
        assert not verify_env_enabled({"REPRO_VERIFY": "0"})
        assert not verify_env_enabled({"REPRO_VERIFY": ""})
        assert not verify_env_enabled({})


# ----------------------------------------------------------------------
# read-only + zero-overhead contracts
# ----------------------------------------------------------------------


class TestOverheadAndEquivalence:
    def test_disabled_run_allocates_nothing(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        run_tc()  # warm caches so the probe measures steady state
        before = allocation_counts()
        run_tc()
        assert allocation_counts() == before

    def test_enabling_verify_is_byte_identical(self, monkeypatch):
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        plain = fingerprint(run_tc())
        checked = fingerprint(run_tc(verify=True))
        assert checked == plain

    def test_config_flag_arms_monitor(self, small_social_graph):
        config = make_cluster_config(verify=True)
        job = GMinerJob(TriangleCountingApp(), small_social_graph, config)
        result = job.run()
        assert result.status is JobStatus.OK
        assert job.verify is not None
        assert job.verify.checks > 0
        assert job.verify.violations == 0

    def test_env_var_arms_monitor(self, small_social_graph, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        config = make_cluster_config()
        job = GMinerJob(TriangleCountingApp(), small_social_graph, config)
        job.run()
        assert job.verify is not None
        assert job.verify.checks > 0

    def test_verify_identical_under_faults(self, monkeypatch):
        """Degraded runs are checked too, and stay byte-identical."""
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        from repro.sim.failures import FailurePlan

        def degraded(**overrides):
            plan = (
                FailurePlan(seed=7)
                .kill(1, at_time=0.05, recovery_delay=0.05)
                .lossy(0.05)
            )
            config = make_cluster_config(
                checkpoint_interval=0.02, time_limit=120.0, **overrides
            )
            job = GMinerJob(
                TriangleCountingApp(), make_clustered_graph(), config,
                failure_plan=plan,
            )
            return job.run()

        plain = fingerprint(degraded())
        checked = fingerprint(degraded(verify=True))
        assert checked == plain


# ----------------------------------------------------------------------
# planted mutant: the monitor must catch a real accounting bug
# ----------------------------------------------------------------------


class TestPlantedMutant:
    @pytest.fixture
    def tampered_pool(self, monkeypatch):
        """A core pool that bills one extra work unit per dispatched item."""
        original = CorePool.submit_lazy

        def tampered(self, factory, front=False):
            def inflating():
                work, on_done = factory()
                return (work + 1.0, on_done)

            return original(self, inflating, front=front)

        monkeypatch.setattr(CorePool, "submit_lazy", tampered)

    def test_metering_bug_caught(self, tampered_pool, small_social_graph):
        config = make_cluster_config(verify=True)
        job = GMinerJob(TriangleCountingApp(), small_social_graph, config)
        with pytest.raises(InvariantViolation) as exc:
            job.run()
        assert exc.value.invariant == "work-conservation"
        assert exc.value.window  # the repro window travelled with it

    def test_metering_bug_silent_without_monitor(
        self, tampered_pool, small_social_graph, monkeypatch
    ):
        """The same bug sails through unchecked — the monitor is what
        catches it, not some other layer."""
        monkeypatch.delenv("REPRO_VERIFY", raising=False)
        config = make_cluster_config()
        result = GMinerJob(
            TriangleCountingApp(), small_social_graph, config
        ).run()
        assert result.status is JobStatus.OK
