"""Native execution: run G-Miner jobs for real on a process pool.

The bridge from "models the paper's cluster" to "is itself fast":
``GMinerConfig(execution="native")`` (or ``repro.mine(...,
execution="native")``) routes a job through :func:`run_native`, which
executes the same tasks the simulator models across a multiprocess
pool — per-worker chunk queues with seeded work stealing, the graph
pickled once per worker, candidate-set work on the configured
:mod:`repro.kernels` backend — and merges per-chunk outcomes by chunk
id so results and total work-unit charges are bit-identical at any
worker count, and (for every schedule-independent workload) to the
simulated run itself.  ``python -m repro.verify.fuzz --native-axis``
enforces the contract differentially; DESIGN.md states it precisely.

The pool is *supervised* (:mod:`repro.native.supervisor`): worker
crashes, hangs and transient chunk errors are retried within bounded
budgets, and a :class:`NativeFaultPlan` (:mod:`repro.native.chaos`)
injects real seeded faults so the contract is asserted under chaos —
survivable schedules stay bit-identical to the fault-free run;
unsurvivable ones raise a structured :class:`NativeChunkError`.
``python -m repro.verify.fuzz --native-chaos`` fuzzes exactly that.
"""

from repro.native.chaos import FAULT_EXIT_CODE, NativeFaultPlan
from repro.native.engine import (
    STEAL_SEED,
    default_native_workers,
    graph_payload,
    run_native,
    seed_chunks,
)
from repro.native.runtime import (
    ChunkOutcome,
    execute_chunk,
    make_data_source,
    run_task,
)
from repro.native.supervisor import (
    DEFAULT_CHUNK_DEADLINE,
    DEFAULT_MAX_CHUNK_RETRIES,
    DEFAULT_MAX_RESPAWNS,
    ChunkFailure,
    NativeChunkError,
    Supervisor,
)

__all__ = [
    "ChunkFailure",
    "ChunkOutcome",
    "DEFAULT_CHUNK_DEADLINE",
    "DEFAULT_MAX_CHUNK_RETRIES",
    "DEFAULT_MAX_RESPAWNS",
    "FAULT_EXIT_CODE",
    "NativeChunkError",
    "NativeFaultPlan",
    "STEAL_SEED",
    "Supervisor",
    "default_native_workers",
    "execute_chunk",
    "graph_payload",
    "make_data_source",
    "run_native",
    "run_task",
    "seed_chunks",
]
