"""Pure-Python kernel backend: adaptive merge / galloping set ops.

Array handles are :class:`SortedIds` — a ``tuple`` subclass tagging
"sorted, duplicate-free" so :func:`as_array` is idempotent and cheap.

Strategy per binary op, following the classic adaptive-intersection
playbook: when the operands are of comparable size, a single pass over
Python sets (C-speed hashing) wins; when one side is much smaller,
*galloping* — ``bisect`` per element of the small side into the large
side — does O(small · log large) work and wins by a wide margin.  The
textbook two-pointer merge is kept (and exported) both as the
semantics oracle and for the microbenchmarks.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, List, Sequence, Tuple

#: One side must be this many times larger before galloping beats the
#: set-based path (bisect per element vs one hash per element).
GALLOP_RATIO = 32


class SortedIds(tuple):
    """A tuple certified sorted and duplicate-free."""

    __slots__ = ()


def as_array(seq: Iterable[int]) -> SortedIds:
    if isinstance(seq, SortedIds):
        return seq
    t = tuple(seq)
    if all(t[i] < t[i + 1] for i in range(len(t) - 1)):
        return SortedIds(t)
    return SortedIds(sorted(set(t)))


def tolist(arr: SortedIds) -> List[int]:
    return list(arr)


def unique_sorted(seq: Iterable[int]) -> SortedIds:
    return as_array(seq)


def merge_intersect(a: Sequence[int], b: Sequence[int]) -> List[int]:
    """Two-pointer merge intersection (exported for benchmarks/tests)."""
    out: List[int] = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        x, y = a[i], b[j]
        if x == y:
            out.append(x)
            i += 1
            j += 1
        elif x < y:
            i += 1
        else:
            j += 1
    return out


def galloping_intersect(small: Sequence[int], large: Sequence[int]) -> List[int]:
    """Intersection by binary-searching each small element in large."""
    out: List[int] = []
    lo = 0
    hi = len(large)
    for x in small:
        lo = bisect_left(large, x, lo, hi)
        if lo == hi:
            break
        if large[lo] == x:
            out.append(x)
            lo += 1
    return out


def intersect(a: SortedIds, b: SortedIds) -> SortedIds:
    if len(a) > len(b):
        a, b = b, a
    if not a:
        return SortedIds()
    if len(b) > GALLOP_RATIO * len(a):
        return SortedIds(galloping_intersect(a, b))
    common = set(a).intersection(b)
    return SortedIds(x for x in a if x in common)


def intersect_count(a: SortedIds, b: SortedIds) -> int:
    if len(a) > len(b):
        a, b = b, a
    if not a:
        return 0
    if len(b) > GALLOP_RATIO * len(a):
        return len(galloping_intersect(a, b))
    return len(set(a).intersection(b))


def difference(a: SortedIds, b: SortedIds) -> SortedIds:
    if not a or not b:
        return a
    drop = set(a).intersection(b)
    if not drop:
        return a
    return SortedIds(x for x in a if x not in drop)


def union(a: SortedIds, b: SortedIds) -> SortedIds:
    if not a:
        return b
    if not b:
        return a
    return SortedIds(sorted(set(a).union(b)))


def contains(hay: SortedIds, needles: Sequence[int]) -> List[bool]:
    members = set(hay)
    return [x in members for x in needles]


def slice_gt(arr: SortedIds, x: int) -> SortedIds:
    return SortedIds(arr[bisect_right(arr, x):])


def intersect_count_many(
    arrays: Sequence[Iterable[int]],
    thresholds: Sequence[int],
    target: SortedIds,
) -> Tuple[int, int]:
    total = 0
    scanned = 0
    for raw, t in zip(arrays, thresholds):
        arr = raw if isinstance(raw, SortedIds) else as_array(raw)
        scanned += len(arr)
        total += intersect_count(slice_gt(arr, t), slice_gt(target, t))
    return total, scanned
