"""Wall-clock benchmark for the native execution engine.

Runs a workload × backend × worker-count grid under
``GMinerConfig(execution="native")`` and writes
``results/BENCH_native.json`` in the regression-gate schema
(:mod:`repro.obs.compare`): per-cell ``work_units``/``tasks_created``
are bit-identical across every backend and worker count (the engine's
equivalence contract), so the gate pins them exactly on any host,
while wall-clock quantities — untracked by the gate — carry the
``env`` block (CPU count, numpy version, ...) that makes them
attributable.

Two speedups are reported per cell:

* ``speedup_vs_serial`` — against the workload's *serial baseline*:
  the reference backend on one worker, i.e. the only way this repo
  could execute before the native engine grew backends and a pool;
* ``speedup_vs_same_backend_serial`` — against the same backend on one
  worker, isolating what the process pool alone buys (≈1.0 on a
  single-core host; the ``env`` block says which kind of host ran).

Run directly (``PYTHONPATH=src python benchmarks/native_bench.py``);
``--quick`` shrinks the graph for smoke runs (results not written).
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro import kernels
from repro.core.config import GMinerConfig
from repro.core.job import GMinerJob
from repro.graph.generators import preferential_attachment_graph
from repro.obs.compare import BENCH_SCHEMA
from repro.obs.env import environment_metadata
from repro.plans import PlanApp, compile_pattern, motif
from repro.apps import TriangleCountingApp

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "results", "BENCH_native.json"
)

GRAPH_SEED = 7

WORKER_COUNTS = (1, 2, 4)


def _workloads() -> List[Tuple[str, Any, Tuple[int, int]]]:
    """(name, app factory, (n, m)) triples — one legacy workload, one
    compiled plan, each on the graph regime that stresses it:

    * ``tc`` on a dense scale-free graph (average degree ~300), where
      candidate sets are long and the array backends' batched
      intersections dominate the runtime;
    * the tailed-triangle plan on a smaller graph — plan execution
      materialises partial embeddings in python, so its cells measure
      executor overhead more than kernel throughput.
    """
    return [
        ("tc", TriangleCountingApp, (1500, 150)),
        ("plan:tailed-triangle",
         lambda: PlanApp(compile_pattern(motif("tailed-triangle"))),
         (400, 30)),
    ]


def _run_cell(app_factory, graph, backend: str, workers: int):
    config = GMinerConfig(
        execution="native",
        native_workers=workers,
        kernel_backend=backend,
    )
    started = time.perf_counter()
    result = GMinerJob(app_factory(), graph, config).run()
    wall = time.perf_counter() - started
    return result, wall


def bench_native(
    scale: float = 1.0, seed: int = GRAPH_SEED
) -> Dict[str, Any]:
    backends = kernels.available_backends()
    cells: Dict[str, Dict[str, Any]] = {}
    graphs: Dict[str, Dict[str, int]] = {}
    for workload, app_factory, (n, m) in _workloads():
        n, m = max(32, int(n * scale)), max(4, int(m * scale))
        graph = preferential_attachment_graph(n, m, seed=seed)
        num_edges = sum(len(graph.neighbors(v)) for v in graph.vertices()) // 2
        graphs[workload] = {"n": n, "m": m, "seed": seed, "edges": num_edges}
        serial_wall: Optional[float] = None  # reference backend, 1 worker
        expected: Optional[Tuple[Any, float]] = None
        same_backend_serial: Dict[str, float] = {}
        for backend in backends:
            for workers in WORKER_COUNTS:
                result, wall = _run_cell(app_factory, graph, backend, workers)
                work = result.stats["work_units"]
                if backend == "reference" and workers == 1:
                    serial_wall = wall
                if workers == 1:
                    same_backend_serial[backend] = wall
                # the equivalence contract, re-checked on every cell
                if expected is None:
                    expected = (result.value, work)
                elif (result.value, work) != expected:
                    raise AssertionError(
                        f"{workload}/{backend}/w{workers}: value/work "
                        f"({result.value}, {work}) != {expected} — "
                        "bit-identity contract broken"
                    )
                cells[f"{workload}/{backend}/w{workers}"] = {
                    "wall_seconds": wall,
                    "speedup_vs_serial":
                        serial_wall / wall if serial_wall else None,
                    "speedup_vs_same_backend_serial":
                        same_backend_serial[backend] / wall,
                    "work_units": work,
                    "tasks_created": result.stats["tasks_created"],
                    "value": result.value,
                    "steals": result.native["steals"],
                }
    return {
        "schema": BENCH_SCHEMA,
        "benchmark": "native execution engine",
        "env": environment_metadata(),
        "graphs": {"generator": "preferential_attachment", **graphs},
        "serial_baseline": "reference backend, 1 worker, per workload",
        "worker_counts": list(WORKER_COUNTS),
        "cells": cells,
    }


def save_report(report: Dict[str, Any], path: str = RESULTS_PATH) -> str:
    path = os.path.abspath(path)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the native execution engine grid."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="tiny graph, no results file (CI smoke)",
    )
    parser.add_argument("-o", "--out", default=RESULTS_PATH)
    args = parser.parse_args(argv)
    if args.quick:
        report = bench_native(scale=0.2)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    report = bench_native()
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"saved {save_report(report, args.out)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
