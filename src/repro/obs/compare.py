"""The bench regression gate: compare tracked quantities against a baseline.

``results/BENCH_obs.json`` (written by ``python -m repro.obs.baseline``)
pins the tracked quantities of a small, fast cell matrix — work units,
message counts, simulated makespan, network bytes, tasks created.
These are exactly the quantities behind the paper's tables, and the
simulator makes them deterministic, so *any* drift is a behaviour
change someone must either fix or intentionally re-baseline::

    python -m repro.obs.compare results/BENCH_obs.json new.json

Exit codes: ``0`` clean, ``1`` drift detected, ``2`` usage/schema
error.  ``--rtol`` relaxes the per-quantity relative tolerance
(default ``1e-9`` — effectively exact, since same-seed runs are
bit-identical).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List

BENCH_SCHEMA = "repro.obs.bench/1"

#: Per-cell quantities the gate tracks (keys inside each cell record).
TRACKED = ("makespan", "messages", "network_bytes", "tasks_created", "work_units")


def load_baseline(path: str) -> Dict[str, Any]:
    """Load and schema-check one baseline/snapshot document."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: expected schema {BENCH_SCHEMA!r}, found {schema!r}"
        )
    if not isinstance(doc.get("cells"), dict):
        raise ValueError(f"{path}: missing 'cells' mapping")
    return doc


def _drifted(a: float, b: float, rtol: float) -> bool:
    scale = max(abs(a), abs(b))
    return abs(a - b) > rtol * scale if scale else False


def compare(
    baseline: Dict[str, Any], new: Dict[str, Any], rtol: float = 1e-9
) -> List[str]:
    """Return human-readable drift lines (empty == clean)."""
    problems: List[str] = []
    base_cells: Dict[str, Any] = baseline["cells"]
    new_cells: Dict[str, Any] = new["cells"]
    for cell in sorted(set(base_cells) - set(new_cells)):
        problems.append(f"cell {cell}: missing from new snapshot")
    for cell in sorted(set(new_cells) - set(base_cells)):
        problems.append(f"cell {cell}: not in baseline (re-baseline to accept)")
    for cell in sorted(set(base_cells) & set(new_cells)):
        base_q, new_q = base_cells[cell], new_cells[cell]
        for quantity in TRACKED:
            if quantity not in base_q:
                # unknown to the baseline: a quantity added after it
                # was pinned — tolerated so older baselines keep
                # gating newer snapshots (re-baseline to start tracking)
                continue
            if quantity not in new_q:
                problems.append(
                    f"cell {cell}: quantity {quantity!r} disappeared "
                    "from new snapshot"
                )
                continue
            a, b = float(base_q[quantity]), float(new_q[quantity])
            if _drifted(a, b, rtol):
                rel = abs(a - b) / max(abs(a), abs(b))
                problems.append(
                    f"cell {cell}: {quantity} drifted {a!r} -> {b!r} "
                    f"(rel {rel:.3e} > rtol {rtol:.1e})"
                )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.compare",
        description="Fail when tracked bench quantities drift from the baseline.",
    )
    parser.add_argument("baseline", help="checked-in baseline JSON (results/BENCH_obs.json)")
    parser.add_argument("new", help="freshly generated snapshot JSON")
    parser.add_argument(
        "--rtol", type=float, default=1e-9,
        help="relative tolerance per quantity (default: %(default)s)",
    )
    args = parser.parse_args(argv)
    try:
        baseline = load_baseline(args.baseline)
        new = load_baseline(args.new)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = compare(baseline, new, rtol=args.rtol)
    if problems:
        print(f"DRIFT: {len(problems)} tracked quantit(y/ies) moved:")
        for line in problems:
            print(f"  {line}")
        print(
            "If intentional, re-baseline with: "
            "python -m repro.obs.baseline -o results/BENCH_obs.json"
        )
        return 1
    cells = len(baseline["cells"])
    print(f"OK: {cells} cells match the baseline (rtol={args.rtol:g})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
