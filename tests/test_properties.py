"""Property-based tests (hypothesis) on core data structures and
invariants: graph construction, subgraph split, LSH, the RCV cache,
the task store, partitioners, and kernel cross-checks."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lsh import MinHashLSH
from repro.core.rcv_cache import CachePolicy, RCVCache
from repro.core.subgraph import Subgraph
from repro.graph.algorithms import triangle_count_exact
from repro.graph.graph import Graph, VertexData
from repro.graph.io import graph_to_lines, load_adjacency_text
from repro.mining.cliques import SharedBound, max_clique_sequential, maximal_cliques
from repro.mining.cost import WorkMeter
from repro.mining.triangles import triangle_count_sequential
from repro.partitioning import BDGPartitioner, HashPartitioner

pytestmark = pytest.mark.property

settings.register_profile(
    "repro", deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
settings.load_profile("repro")

edge_lists = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 30)),
    min_size=0,
    max_size=120,
)

small_edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)),
    min_size=0,
    max_size=40,
)


# ---------------------------------------------------------------- graph

@given(edge_lists)
def test_graph_adjacency_symmetric(edges):
    g = Graph.from_edges(edges)
    for v in g.vertices():
        for u in g.neighbors(v):
            assert v in g.neighbors(u)


@given(edge_lists)
def test_graph_no_self_loops_and_degree_sum(edges):
    g = Graph.from_edges(edges)
    for v in g.vertices():
        assert v not in g.neighbors(v)
    assert sum(g.degree(v) for v in g.vertices()) == 2 * g.num_edges


@given(edge_lists)
def test_graph_io_round_trip(edges):
    g = Graph.from_edges(edges)
    reloaded = load_adjacency_text(graph_to_lines(g))
    assert reloaded.num_vertices == g.num_vertices
    assert reloaded.num_edges == g.num_edges
    for v in g.vertices():
        assert reloaded.neighbors(v) == g.neighbors(v)


@given(edge_lists, st.integers(0, 30), st.integers(0, 30))
def test_subgraph_is_induced(edges, lo, hi):
    g = Graph.from_edges(edges)
    keep = [v for v in g.vertices() if lo <= v <= hi]
    sub = g.subgraph(keep)
    for v in sub.vertices():
        for u in sub.neighbors(v):
            assert g.has_edge(u, v)
    # every kept edge survives
    for v in keep:
        if g.has_vertex(v):
            expected = [u for u in g.neighbors(v) if u in set(keep)]
            assert sorted(sub.neighbors(v)) == sorted(expected)


# ---------------------------------------------------------------- subgraph split

@given(small_edge_lists, st.sets(st.integers(0, 14), max_size=6))
def test_subgraph_split_partitions_nodes(edges, extra_nodes):
    s = Subgraph()
    for u, v in edges:
        if u != v:
            s.add_edge(u, v)
    s.add_nodes(extra_nodes)
    parts = s.split()
    seen = []
    for p in parts:
        seen.extend(p.nodes())
    assert sorted(seen) == sorted(s.nodes())
    total_edges = sum(p.num_edges for p in parts)
    assert total_edges == s.num_edges


# ---------------------------------------------------------------- LSH

@given(st.sets(st.integers(0, 10**6), max_size=50))
def test_lsh_signature_stable_and_sized(ids):
    lsh = MinHashLSH(6, seed=9)
    sig = lsh.signature(ids)
    assert len(sig) == 6
    assert sig == lsh.signature(sorted(ids))


@given(
    st.sets(st.integers(0, 1000), min_size=1, max_size=40),
    st.sets(st.integers(0, 1000), min_size=1, max_size=40),
)
def test_lsh_identical_iff_full_similarity(a, b):
    lsh = MinHashLSH(8, seed=1)
    sim = MinHashLSH.similarity(lsh.signature(a), lsh.signature(b))
    if a == b:
        assert sim == 1.0
    assert 0.0 <= sim <= 1.0


# ---------------------------------------------------------------- RCV cache

@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "lookup", "addref", "release"]),
            st.integers(0, 12),
        ),
        max_size=200,
    ),
    st.sampled_from(list(CachePolicy)),
)
def test_cache_never_exceeds_capacity(ops, policy):
    capacity = 5 * VertexData(vid=0, neighbors=(1, 2, 3)).estimate_size()
    cache = RCVCache(capacity_bytes=capacity, policy=policy)
    for op, vid in ops:
        if op == "insert":
            cache.insert(VertexData(vid=vid, neighbors=(1, 2, 3)), refs=vid % 3)
        elif op == "lookup":
            cache.lookup(vid)
        elif op == "addref" and vid in cache:
            cache.addref(vid)
        elif op == "release":
            cache.release(vid)
        assert cache.used_bytes <= capacity
        # accounting invariant: used == sum of entry sizes
        assert cache.used_bytes == sum(
            e.size for e in cache._entries.values()
        )


@given(st.lists(st.integers(0, 20), min_size=1, max_size=60))
def test_rcv_cache_referenced_survive(vids):
    """Under the RCV policy a referenced vertex is never evicted."""
    size = VertexData(vid=0, neighbors=(1,)).estimate_size()
    cache = RCVCache(capacity_bytes=4 * size, policy=CachePolicy.RCV)
    pinned = VertexData(vid=999, neighbors=(1,))
    assert cache.insert(pinned, refs=1)
    for vid in vids:
        cache.insert(VertexData(vid=vid, neighbors=(1,)), refs=0)
        assert 999 in cache


# ---------------------------------------------------------------- partitioners

@given(edge_lists, st.integers(1, 6), st.sampled_from(["hash", "bdg"]))
def test_partitioners_total_and_in_range(edges, k, which):
    g = Graph.from_edges(edges)
    if g.num_vertices == 0:
        return
    partitioner = HashPartitioner() if which == "hash" else BDGPartitioner(seed=3)
    assignment = partitioner.partition(g, k)
    assignment.validate_complete(g)
    assert all(0 <= w < k for w in assignment.owner.values())


# ---------------------------------------------------------------- kernels

@given(edge_lists)
def test_triangle_kernel_matches_oracle(edges):
    g = Graph.from_edges(edges)
    adj = {v: g.neighbors(v) for v in g.vertices()}
    assert triangle_count_sequential(adj, WorkMeter()) == triangle_count_exact(g)


@given(small_edge_lists)
def test_max_clique_matches_bron_kerbosch(edges):
    g = Graph.from_edges(edges)
    if g.num_vertices == 0:
        return
    adj = {v: g.neighbors(v) for v in g.vertices()}
    best = max_clique_sequential(adj, WorkMeter())
    all_maximal = maximal_cliques(adj, WorkMeter())
    oracle = max((len(c) for c in all_maximal), default=0)
    assert len(best) == oracle


@given(small_edge_lists)
def test_shared_bound_only_improves(edges):
    g = Graph.from_edges(edges)
    adj = {v: g.neighbors(v) for v in g.vertices()}
    bound = SharedBound()
    values = []
    for v in sorted(adj):
        max_clique_sequential({v: adj[v], **adj}, WorkMeter(), bound=bound)
        values.append(bound.value)
    assert values == sorted(values)


# ---------------------------------------------------------------- graphlets

@given(small_edge_lists)
def test_graphlet_k3_consistent_with_triangles(edges):
    from repro.mining.graphlets import graphlet_count_sequential

    g = Graph.from_edges(edges)
    adj = {v: g.neighbors(v) for v in g.vertices()}
    histogram = graphlet_count_sequential(3, adj, WorkMeter())
    assert histogram.get("triangle", 0) == triangle_count_exact(g)
    # wedges + triangles = all connected 3-sets; each is one of the two
    assert set(histogram) <= {"path3", "triangle"}


@given(small_edge_lists)
def test_graphlet_k2_counts_edges(edges):
    from repro.mining.graphlets import graphlet_count_sequential

    g = Graph.from_edges(edges)
    adj = {v: g.neighbors(v) for v in g.vertices()}
    histogram = graphlet_count_sequential(2, adj, WorkMeter(), classify=False)
    assert histogram.get("total", 0) == g.num_edges


# ---------------------------------------------------------------- similarity

@given(
    st.lists(st.integers(0, 30), max_size=8),
    st.lists(st.integers(0, 30), max_size=8),
)
def test_weighted_similarity_bounded(a, b):
    from repro.graph.attributes import weighted_similarity

    weights = {i: 0.1 for i in range(0, 30, 3)}
    sim = weighted_similarity(a, b, weights)
    assert 0.0 <= sim <= 1.0
    # symmetry
    assert sim == weighted_similarity(b, a, weights)


# ---------------------------------------------------------------- store order

@given(st.lists(st.sets(st.integers(0, 40), min_size=1, max_size=6), max_size=30))
def test_task_store_conserves_tasks(pull_sets):
    from repro.core.lsh import MinHashLSH
    from repro.core.task import Task
    from repro.core.task_store import TaskStore
    from repro.graph.graph import VertexData
    from repro.sim.disk import Disk
    from repro.sim.engine import Simulator

    class T(Task):
        def __init__(self, pulls):
            super().__init__(VertexData(vid=0, neighbors=()))
            self.pull(pulls)

        def update(self, cand_objs, env):
            self.finish()

    sim = Simulator()
    disk = Disk(sim, 0, read_bandwidth=1e12, write_bandwidth=1e12, latency=1e-9)
    store = TaskStore(disk, block_tasks=4, lsh=MinHashLSH(4))
    tasks = [T(p) for p in pull_sets]
    store.insert_batch(tasks)
    popped = []

    def drain():
        while (t := store.pop()) is not None:
            popped.append(t)

    store._notify = drain
    drain()
    sim.run()
    assert {t.task_id for t in popped} == {t.task_id for t in tasks}
