"""``repro.mine`` — the one public mining entrypoint.

Everything the six hand-written applications did, plus arbitrary
motifs, behind a single keyword-only call::

    import repro

    repro.mine(graph, workload="tc")                  # built-in plan
    repro.mine(graph, pattern="tailed-triangle")      # named motif
    repro.mine(graph, pattern=my_tree_pattern)        # tree matching
    repro.mine(graph, pattern=PatternQuery(...))      # full vocabulary

Workload names resolve to the legacy applications (bit-identical to
the historical entry points); every other pattern spelling goes
through the plan compiler and the generic executor.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.config import GMinerConfig
from repro.core.job import GMinerJob, JobResult
from repro.graph.graph import Graph
from repro.mining.patterns import TreePattern
from repro.plans.builtins import builtin_plan
from repro.plans.compiler import ExecutionPlan, compile_pattern
from repro.plans.executor import PlanApp
from repro.plans.query import PatternQuery, motif


def resolve_pattern(pattern: Any) -> ExecutionPlan:
    """Turn any accepted pattern spelling into an execution plan.

    Strings name motifs (``ValueError`` for unknown names); a
    :class:`TreePattern` compiles with the legacy matcher semantics; a
    :class:`PatternQuery` compiles as-is; an :class:`ExecutionPlan`
    passes through.
    """
    if isinstance(pattern, ExecutionPlan):
        return pattern
    if isinstance(pattern, str):
        return compile_pattern(motif(pattern))
    if isinstance(pattern, (TreePattern, PatternQuery)):
        return compile_pattern(pattern)
    raise TypeError(
        "pattern must be a motif name, TreePattern, PatternQuery or "
        f"ExecutionPlan, got {type(pattern).__name__}"
    )


def mine(
    graph: Graph,
    *,
    pattern: Any = None,
    workload: Optional[str] = None,
    config: Optional[GMinerConfig] = None,
    failure_plan: Any = None,
    **options: Any,
) -> JobResult:
    """Mine ``graph`` for a pattern or a built-in workload.

    At least one of ``pattern`` and ``workload`` must be given
    (keyword-only); when both are, ``pattern`` parameterises the
    workload (only ``gm`` accepts that).  ``workload`` is one of the
    six built-ins
    (``tc``/``mcf``/``gm``/``gl``/``cd``/``gc``), executed by the
    legacy grower — results and work units are bit-identical to the
    historical per-app entry points.  ``pattern`` is a named motif, a
    :class:`~repro.mining.patterns.TreePattern`, a
    :class:`~repro.plans.query.PatternQuery` or a pre-compiled
    :class:`~repro.plans.compiler.ExecutionPlan`, run by the generic
    plan executor; the job value is the embedding count.

    Extra keyword ``options`` parameterise built-in workloads (e.g.
    ``pattern=`` for ``gm``, ``k=`` for ``gl``, ``exemplars=`` for
    ``gc``); the pattern path accepts none.  ``config`` defaults to
    :class:`~repro.core.config.GMinerConfig`'s single-job defaults;
    ``failure_plan`` is forwarded to the job untouched.  Returns the
    :class:`~repro.core.job.JobResult`.
    """
    if pattern is None and workload is None:
        raise TypeError(
            "mine() needs exactly one of pattern= or workload= "
            "(both are keyword-only)"
        )
    if workload is not None:
        if pattern is not None:
            # alongside workload=, pattern= is a workload option (gm's
            # tree pattern); workloads that take none reject it by name
            options["pattern"] = pattern
        app = builtin_plan(workload).build_app(graph, **options)
    else:
        if options:
            raise TypeError(
                f"unknown option(s) {sorted(options)}: pattern queries "
                "take no extra options — encode constraints in the "
                "PatternQuery itself"
            )
        app = PlanApp(resolve_pattern(pattern))
    if config is None:
        config = GMinerConfig()
    job = GMinerJob(app, graph, config, failure_plan)
    return job.run()
