"""Graph clustering (GC) on G-Miner.

The paper's heaviest workload (§8.1): FocusCO-style focused clustering.
The user's exemplar vertices are app-level input (their attribute lists
are known up front, as in [21]); attribute weights are inferred once
and shipped with the app, and each task runs the convergent add/remove
refinement via the resumable
:class:`~repro.mining.clustering.FocusedClusterGrower`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.api import GMinerApp
from repro.core.task import Task, TaskEnv
from repro.graph.attributes import infer_attribute_weights
from repro.graph.graph import VertexData
from repro.mining.clustering import DONE, FocusParams, FocusedClusterGrower


class GCTask(Task):
    """Multi-round task wrapping the convergent cluster refinement."""

    def __init__(
        self,
        seed: VertexData,
        params: FocusParams,
        weights: Dict[int, float],
    ) -> None:
        super().__init__(seed)
        self.grower = FocusedClusterGrower(
            seed.vid, seed.neighbors, seed.attributes, params, weights
        )
        self.pull(seed.neighbors)

    def context_size(self) -> int:
        return self.grower.estimate_size()

    def update(self, cand_objs: Dict[int, VertexData], env: TaskEnv) -> None:
        candidate_data = {
            vid: (data.neighbors, data.attributes)
            for vid, data in cand_objs.items()
        }
        status, payload = self.grower.advance(candidate_data, meter=self)
        if status == DONE:
            self.subgraph.add_nodes(self.grower.members)
            self.finish(payload)
            return
        self.pull(payload)


class GraphClusteringApp(GMinerApp):
    """Focused clusters around user exemplars; job value is their list."""

    name = "gc"

    def __init__(
        self,
        exemplar_attributes: Sequence[Sequence[int]],
        params: Optional[FocusParams] = None,
    ) -> None:
        if not exemplar_attributes:
            raise ValueError("GC needs at least one exemplar attribute list")
        self.params = params or FocusParams()
        self.weights = infer_attribute_weights(exemplar_attributes)

    def make_task(self, vertex: VertexData) -> Optional[Task]:
        if not vertex.neighbors:
            return None
        return GCTask(vertex, self.params, self.weights)

    def combine_results(self, results) -> List[Tuple[int, ...]]:
        return sorted(r for r in results if r is not None)
