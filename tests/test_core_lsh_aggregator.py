"""Unit tests for MinHash LSH keying and aggregators."""

import pytest

from repro.core.aggregator import (
    AggregatorState,
    MaxAggregator,
    SumAggregator,
)
from repro.core.lsh import MinHashLSH


class TestMinHash:
    def test_deterministic(self):
        a = MinHashLSH(4, seed=1)
        b = MinHashLSH(4, seed=1)
        assert a.signature({1, 5, 9}) == b.signature({1, 5, 9})

    def test_identical_sets_identical_signatures(self):
        lsh = MinHashLSH(4)
        assert lsh.signature([3, 1, 2]) == lsh.signature([1, 2, 3])

    def test_empty_set_signature(self):
        lsh = MinHashLSH(4)
        assert lsh.signature([]) == (0, 0, 0, 0)

    def test_signature_length(self):
        assert len(MinHashLSH(7).signature({1})) == 7

    def test_similar_sets_agree_more(self):
        lsh = MinHashLSH(32, seed=3)
        base = set(range(100))
        near = set(range(95)) | {200, 201, 202, 203, 204}
        far = set(range(1000, 1100))
        sim_near = MinHashLSH.similarity(lsh.signature(base), lsh.signature(near))
        sim_far = MinHashLSH.similarity(lsh.signature(base), lsh.signature(far))
        assert sim_near > sim_far

    def test_similarity_estimates_jaccard(self):
        lsh = MinHashLSH(256, seed=5)
        a = set(range(100))
        b = set(range(50, 150))  # true Jaccard = 50/150
        est = MinHashLSH.similarity(lsh.signature(a), lsh.signature(b))
        assert est == pytest.approx(1 / 3, abs=0.12)

    def test_mismatched_signature_lengths_rejected(self):
        with pytest.raises(ValueError):
            MinHashLSH.similarity((1, 2), (1,))

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            MinHashLSH(0)


class TestAggregators:
    def test_max(self):
        agg = MaxAggregator()
        assert agg.merge_all([3, 9, 1]) == 9
        assert agg.merge_all([]) == 0

    def test_sum(self):
        agg = SumAggregator()
        assert agg.merge_all([3, 9, 1]) == 13

    def test_state_offer_and_global(self):
        state = AggregatorState(MaxAggregator())
        state.offer(5)
        assert state.local_partial == 5
        state.receive_global(9)
        assert state.best_known == 9
        state.offer(20)
        assert state.best_known == 20

    def test_state_global_monotone(self):
        state = AggregatorState(MaxAggregator())
        state.receive_global(10)
        state.receive_global(4)  # stale broadcast cannot lower the view
        assert state.global_value == 10
