"""Unit tests for resource metering and utilisation timelines."""

import pytest

from repro.sim.metrics import (
    ByteCounter,
    MemoryGauge,
    ResourceMeter,
    UtilizationTimeline,
    merge_peaks,
)


class TestResourceMeter:
    def test_begin_end_interval(self):
        m = ResourceMeter("r", capacity=1)
        token = m.begin(1.0)
        m.end(3.0, token)
        assert m.busy_unit_seconds() == pytest.approx(2.0)

    def test_utilization_over_window(self):
        m = ResourceMeter("r", capacity=2)
        m.add_interval(0.0, 1.0, units=1)
        m.add_interval(0.0, 1.0, units=1)
        assert m.utilization(0.0, 1.0) == pytest.approx(1.0)
        assert m.utilization(0.0, 2.0) == pytest.approx(0.5)

    def test_partial_overlap_clipping(self):
        m = ResourceMeter("r", capacity=1)
        m.add_interval(1.0, 3.0)
        assert m.busy_unit_seconds(0.0, 2.0) == pytest.approx(1.0)
        assert m.busy_unit_seconds(2.5, 10.0) == pytest.approx(0.5)

    def test_zero_length_interval_ignored(self):
        m = ResourceMeter("r")
        m.add_interval(1.0, 1.0)
        assert m.busy_unit_seconds() == 0.0

    def test_empty_window_zero_utilization(self):
        m = ResourceMeter("r")
        assert m.utilization(1.0, 1.0) == 0.0

    def test_concurrent_tokens(self):
        m = ResourceMeter("r", capacity=2)
        t1 = m.begin(0.0)
        t2 = m.begin(0.5)
        m.end(1.0, t1)
        m.end(1.5, t2)
        assert m.busy_unit_seconds() == pytest.approx(2.0)

    def test_end_unknown_token_raises_value_error(self):
        m = ResourceMeter("r")
        with pytest.raises(ValueError, match="unknown token"):
            m.end(1.0, 42)

    def test_end_twice_raises_value_error(self):
        m = ResourceMeter("r")
        token = m.begin(0.0)
        m.end(1.0, token)
        with pytest.raises(ValueError, match="already ended"):
            m.end(2.0, token)

    def test_inverted_window_raises_value_error(self):
        m = ResourceMeter("r")
        m.add_interval(0.0, 1.0)
        with pytest.raises(ValueError, match="inverted"):
            m.busy_unit_seconds(2.0, 1.0)

    def test_open_ended_window_allows_any_start(self):
        m = ResourceMeter("r")
        m.add_interval(0.0, 3.0)
        assert m.busy_unit_seconds(1.0) == pytest.approx(2.0)

    def test_overlapping_intervals_sum_within_window(self):
        # two units busy on [1, 3), one on [2, 5): window clipping must
        # charge each interval independently
        m = ResourceMeter("r", capacity=3)
        m.add_interval(1.0, 3.0, units=2)
        m.add_interval(2.0, 5.0, units=1)
        assert m.busy_unit_seconds(0.0, 2.0) == pytest.approx(2.0)
        assert m.busy_unit_seconds(2.0, 3.0) == pytest.approx(3.0)
        assert m.busy_unit_seconds(2.5, 4.0) == pytest.approx(2.5)
        assert m.busy_unit_seconds() == pytest.approx(7.0)

    def test_overlapping_window_utilization(self):
        m = ResourceMeter("r", capacity=2)
        m.add_interval(0.0, 2.0, units=1)
        m.add_interval(1.0, 2.0, units=1)
        assert m.utilization(0.0, 1.0) == pytest.approx(0.5)
        assert m.utilization(1.0, 2.0) == pytest.approx(1.0)
        assert m.utilization(0.0, 2.0) == pytest.approx(0.75)


class TestUtilizationTimeline:
    def test_bins_and_values(self):
        m = ResourceMeter("cpu", capacity=1)
        m.add_interval(0.0, 1.0)
        tl = UtilizationTimeline({"cpu": m})
        times, series = tl.sample(end=2.0, bins=4)
        assert len(times) == 4
        assert series["cpu"] == pytest.approx([100.0, 100.0, 0.0, 0.0])

    def test_bad_bins_rejected(self):
        tl = UtilizationTimeline({})
        with pytest.raises(ValueError):
            tl.sample(end=1.0, bins=0)

    def test_multiple_meters(self):
        cpu = ResourceMeter("cpu", capacity=1)
        net = ResourceMeter("net", capacity=1)
        cpu.add_interval(0.0, 2.0)
        net.add_interval(1.0, 2.0)
        tl = UtilizationTimeline({"cpu": cpu, "net": net})
        _, series = tl.sample(end=2.0, bins=2)
        assert series["cpu"] == pytest.approx([100.0, 100.0])
        assert series["net"] == pytest.approx([0.0, 100.0])


class TestByteCounter:
    def test_accumulates(self):
        c = ByteCounter("n")
        c.add(10)
        c.add(5)
        assert c.total == 15

    def test_gigabytes(self):
        c = ByteCounter("n")
        c.add(2 * 10**9)
        assert c.gigabytes == pytest.approx(2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ByteCounter("n").add(-1)


class TestMemoryGauge:
    def test_peak_tracks_maximum(self):
        g = MemoryGauge("m")
        g.allocate(100)
        g.allocate(50)
        g.free(120)
        g.allocate(10)
        assert g.current == 40
        assert g.peak == 150

    def test_free_clamps_at_zero(self):
        g = MemoryGauge("m")
        g.allocate(10)
        g.free(100)
        assert g.current == 0

    def test_merge_peaks(self):
        gauges = [MemoryGauge("a"), MemoryGauge("b")]
        gauges[0].allocate(10)
        gauges[1].allocate(20)
        assert merge_peaks(gauges) == 30
