"""G-Miner core: the paper's primary contribution.

A task-oriented graph-mining system (§4–§7):

* the **task model** — independent units carrying ``(subgraph,
  candidates, context)`` through ACTIVE/INACTIVE/READY/DEAD states;
* the **task pipeline** — task store (LSH-keyed priority queue with
  disk-resident blocks), candidate retriever (CMQ + reference-counting
  vertex cache), task executor (CPQ + compute pool + batched task
  buffer) — all progressing concurrently with no barriers;
* **load balancing** — BDG partitioning (static) and task stealing
  (dynamic, REQ/MIGRATE protocol with cost/locality thresholds);
* **fault tolerance** — periodic checkpoints to (simulated) HDFS with
  per-worker recovery.

User programs subclass :class:`Task` and :class:`GMinerApp` (mirroring
the paper's Listing 1 API) and run via :class:`GMinerJob`.
"""

from repro.core.config import GMinerConfig
from repro.core.subgraph import Subgraph
from repro.core.task import Task, TaskStatus, TaskEnv
from repro.core.aggregator import Aggregator, MaxAggregator, SumAggregator
from repro.core.api import GMinerApp
from repro.core.lsh import MinHashLSH
from repro.core.rcv_cache import RCVCache, CachePolicy
from repro.core.task_store import TaskStore
from repro.core.job import GMinerJob, JobResult, JobStatus

__all__ = [
    "GMinerConfig",
    "Subgraph",
    "Task",
    "TaskStatus",
    "TaskEnv",
    "Aggregator",
    "MaxAggregator",
    "SumAggregator",
    "GMinerApp",
    "MinHashLSH",
    "RCVCache",
    "CachePolicy",
    "TaskStore",
    "GMinerJob",
    "JobResult",
    "JobStatus",
]
