"""Table 1 — motivation: MCF on Orkut across five systems plus a
single-threaded baseline (paper §3).

Expected shape: the single thread runs at 100% CPU; the vertex-centric
and embedding systems fail (OOM / over the limit); the two
subgraph-centric systems succeed, with G-Miner fastest."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments
from repro.core.job import JobStatus


def test_table1_motivation(benchmark):
    report = run_experiment(benchmark, experiments.table1_motivation)
    data = report.data
    assert data["single-thread"].cpu_utilization == 1.0
    assert data["giraph"].status is JobStatus.OOM
    assert data["graphx"].status is not JobStatus.OK
    assert data["arabesque"].status is not JobStatus.OK
    assert data["gthinker"].ok and data["gminer"].ok
    assert data["gminer"].total_seconds < data["gthinker"].total_seconds
