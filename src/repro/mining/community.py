"""Community-detection kernel (the paper's CD application).

The paper mines communities as *attribute-coherent dense subgraphs*:
it adopts the branch-and-bound machinery of [33] for the dense-topology
part and filters newly added candidate vertices by attribute
similarity (§8.1).  The algorithm grows a community from a seed:

1. candidates = neighbours of the current community passing the
   attribute filter (Jaccard similarity with the seed ≥ ``tau``);
2. repeatedly admit the candidate with the strongest connectivity into
   the community, provided the density stays ≥ ``gamma``;
3. stop when no candidate qualifies; report if ``min_size`` reached.

Each community is reported by exactly one task — the one seeded at its
minimum vertex — so distributed counts need no deduplication.

The core is a **resumable stepper** (:class:`CommunityGrower`).  Its
persistent state is deliberately small — the members and their data,
matching G-Miner's task model where a task carries only its growing
subgraph while candidate data lives in the vertex cache.  Candidate
data is *re-requested* every step (``("need", vids)``); the G-Miner
task turns that into a pull round (mostly cache hits), the sequential
wrapper feeds it straight from the graph.  Both compute byte-identical
results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro import kernels
from repro.graph.attributes import jaccard_sorted
from repro.mining.cost import WorkMeter

#: Stepper outcome tags.
NEED = "need"
DONE = "done"

#: Vertex payload: (neighbors, attributes).
VertexInfo = Tuple[Tuple[int, ...], Tuple[int, ...]]


@dataclass(frozen=True)
class CommunityParams:
    """Thresholds for CD: attribute similarity, density, size."""

    tau: float = 0.5  # minimum attribute similarity to the seed
    gamma: float = 0.55  # minimum internal edge density
    min_size: int = 4
    max_size: int = 64


def _density(internal_edges: int, size: int) -> float:
    if size < 2:
        return 1.0
    return 2.0 * internal_edges / (size * (size - 1))


class CommunityGrower:
    """Resumable greedy community growth from one seed.

    Persistent state: the community, its members' data, and the link
    counts of frontier candidates.  Candidate attribute data is taken
    from the ``candidate_data`` argument of each :meth:`advance` call
    and not retained.
    """

    def __init__(
        self,
        seed: int,
        seed_neighbors: Sequence[int],
        seed_attrs: Sequence[int],
        params: CommunityParams,
    ) -> None:
        self.seed = seed
        self.params = params
        self.seed_attrs = tuple(seed_attrs)
        self._seed_attr_arr = kernels.unique_sorted(self.seed_attrs)
        # candidate attribute lists converted to kernel handles once;
        # the greedy scan re-evaluates the same candidates every
        # admission, so this cache is hit O(community size) times each
        self._attr_arrs: Dict[int, object] = {}
        self.community: Set[int] = {seed}
        self.member_data: Dict[int, VertexInfo] = {
            seed: (tuple(seed_neighbors), self.seed_attrs)
        }
        self.internal_edges = 0
        # links[v] = edges between candidate v and the current community
        self.links: Dict[int, int] = {}
        for u in seed_neighbors:
            self.links[u] = self.links.get(u, 0) + 1
        self.finished = False
        self.result: Optional[Tuple[int, ...]] = None

    def needed(self) -> List[int]:
        """Candidate vertices whose data the next step requires."""
        return sorted(v for v in self.links if v not in self.community)

    def advance(self, candidate_data: Mapping[int, VertexInfo], meter: WorkMeter):
        """Run greedy admissions until candidate data is missing or
        growth stops.

        ``candidate_data`` must cover :meth:`needed`; a fresh ``need``
        is returned whenever an admission introduces new candidates.
        Returns ``(DONE, community-or-None)`` at termination.
        """
        if self.finished:
            return (DONE, self.result)
        while len(self.community) < self.params.max_size:
            pending = [v for v in self.needed() if v not in candidate_data]
            if pending:
                return (NEED, self.needed())
            best: Optional[int] = None
            best_key: Tuple[int, int] = (0, 0)
            # one unit per candidate scanned, charged in bulk
            meter.charge(len(self.links))
            for v, link_count in self.links.items():
                if v in self.community:
                    continue
                attr_arr = self._attr_arrs.get(v)
                if attr_arr is None:
                    attr_arr = kernels.unique_sorted(candidate_data[v][1])
                    self._attr_arrs[v] = attr_arr
                sim = jaccard_sorted(self._seed_attr_arr, attr_arr)
                meter.charge(len(self.seed_attrs) + 1)
                if sim < self.params.tau:
                    continue
                key = (link_count, -v)
                if best is None or key > best_key:
                    best = v
                    best_key = key
            if best is None:
                break
            new_edges = self.internal_edges + self.links[best]
            if _density(new_edges, len(self.community) + 1) < self.params.gamma:
                break
            self.community.add(best)
            self.member_data[best] = candidate_data[best]
            self.internal_edges = new_edges
            neighbors, _ = candidate_data[best]
            meter.charge(len(neighbors))
            for u in neighbors:
                if u not in self.community:
                    self.links[u] = self.links.get(u, 0) + 1
            self.links.pop(best, None)
        self.finished = True
        self.result = self._final()
        return (DONE, self.result)

    def _final(self) -> Optional[Tuple[int, ...]]:
        if len(self.community) < self.params.min_size:
            return None
        if self.seed != min(self.community):
            # the task seeded at the minimum member reports it instead
            return None
        return tuple(sorted(self.community))

    def estimate_size(self) -> int:
        """Byte estimate of persistent grower state (task memory)."""
        member_bytes = sum(
            16 + 8 * len(ns) + 8 * len(at) for ns, at in self.member_data.values()
        )
        return 64 + 16 * len(self.links) + member_bytes


def _info_of(
    vid: int,
    attributes: Mapping[int, Sequence[int]],
    adjacency: Mapping[int, Iterable[int]],
) -> VertexInfo:
    return (tuple(adjacency.get(vid, ())), tuple(attributes.get(vid, ())))


def grow_community(
    seed: int,
    params: CommunityParams,
    attributes: Mapping[int, Sequence[int]],
    adjacency: Mapping[int, Iterable[int]],
    meter: WorkMeter,
) -> Optional[Tuple[int, ...]]:
    """Full-access wrapper: run the grower to completion on one graph."""
    grower = CommunityGrower(
        seed,
        tuple(adjacency.get(seed, ())),
        tuple(attributes.get(seed, ())),
        params,
    )
    supplied: Dict[int, VertexInfo] = {}
    while True:
        status, payload = grower.advance(supplied, meter)
        if status == DONE:
            return payload
        for vid in payload:
            if vid not in supplied:
                supplied[vid] = _info_of(vid, attributes, adjacency)


def community_detection_sequential(
    params: CommunityParams,
    attributes: Mapping[int, Sequence[int]],
    adjacency: Mapping[int, Sequence[int]],
    meter: WorkMeter,
) -> List[Tuple[int, ...]]:
    """All communities in the graph (single-thread baseline kernel)."""
    out: List[Tuple[int, ...]] = []
    for seed in sorted(adjacency):
        community = grow_community(seed, params, attributes, adjacency, meter)
        if community is not None:
            out.append(community)
    return out
