"""The five paper applications (§8.1), written on the G-Miner API.

* :class:`TriangleCountingApp` (TC) — light, 1-hop, non-attributed.
* :class:`MaxCliqueApp` (MCF) — heavy, 1-hop, non-attributed, with the
  global-bound aggregator that yields superlinear pruning.
* :class:`GraphMatchingApp` (GM) — labelled tree-pattern matching
  (Figure 1's pattern by default).
* :class:`CommunityDetectionApp` (CD) — attribute-coherent dense
  subgraphs.
* :class:`GraphClusteringApp` (GC) — FocusCO-style focused clusters.
* :class:`GraphletCountingApp` (GL) — size-k graphlet histograms, a
  sixth application straight from the paper's §4.1 taxonomy.

Each exposes the same knobs the paper's experiments use and reuses the
pure kernels of :mod:`repro.mining`.

The per-workload entry points (:func:`count_triangles`,
:func:`find_max_clique`, ...) are thin wrappers over
:func:`repro.mine` with the workload name fixed — one keyword-only
call per paper application, all returning
:class:`~repro.core.job.JobResult`.
"""

from repro.apps.triangle_counting import TriangleCountingApp, TCTask
from repro.apps.maximal_clique import MaxCliqueApp, MCFTask
from repro.apps.graph_matching import GraphMatchingApp, GMTask
from repro.apps.community_detection import CommunityDetectionApp, CDTask
from repro.apps.graph_clustering import GraphClusteringApp, GCTask
from repro.apps.graphlet_counting import GraphletCountingApp, GLTask


def _mine_workload(workload, graph, kwargs):
    from repro.plans.api import mine

    return mine(graph, workload=workload, **kwargs)


def count_triangles(graph, **kwargs):
    """``repro.mine(graph, workload="tc", ...)``: exact triangle count."""
    return _mine_workload("tc", graph, kwargs)


def find_max_clique(graph, **kwargs):
    """``repro.mine(graph, workload="mcf", ...)``: the maximum clique."""
    return _mine_workload("mcf", graph, kwargs)


def match_pattern(graph, **kwargs):
    """``repro.mine(graph, workload="gm", ...)``: labelled tree-pattern
    embedding count (``pattern=`` overrides Figure 1's default)."""
    return _mine_workload("gm", graph, kwargs)


def detect_communities(graph, **kwargs):
    """``repro.mine(graph, workload="cd", ...)``: community list."""
    return _mine_workload("cd", graph, kwargs)


def cluster_graph(graph, **kwargs):
    """``repro.mine(graph, workload="gc", ...)``: focused clusters
    (``exemplars=``/``exemplar_attributes=`` choose the focus)."""
    return _mine_workload("gc", graph, kwargs)


def count_graphlets(graph, **kwargs):
    """``repro.mine(graph, workload="gl", ...)``: size-``k`` graphlet
    histogram."""
    return _mine_workload("gl", graph, kwargs)


__all__ = [
    "TriangleCountingApp",
    "TCTask",
    "MaxCliqueApp",
    "MCFTask",
    "GraphMatchingApp",
    "GMTask",
    "CommunityDetectionApp",
    "CDTask",
    "GraphClusteringApp",
    "GCTask",
    "GraphletCountingApp",
    "GLTask",
    "count_triangles",
    "find_max_clique",
    "match_pattern",
    "detect_communities",
    "cluster_graph",
    "count_graphlets",
]
