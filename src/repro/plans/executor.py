"""The generic plan-driven grower: executes any
:class:`~repro.plans.compiler.ExecutionPlan` on G-Miner's task model.

One :class:`PlanTask` seeds per admissible vertex; round ``r`` runs
plan step ``r-1``: per partial embedding, intersect the adjacency
lists of the step's source images (smallest-first — the input-aware
candidate direction), slice away ids below the symmetry bound, then
filter the survivors by injectivity, remaining order bounds, label and
attribute predicates.  The final step is *fused*: candidates are
counted, never materialised, and — when it needs no vertex data (pure
structural count) — the last candidate level is never even pulled,
G²Miner's count-fusion trick expressed in the pull model.

Work charging is deterministic and backend-independent: each partial
charges the total length of the adjacency lists it intersects plus one
unit per surviving candidate filtered — the same "elements scanned"
convention the legacy kernels use.

:func:`count_plan_sequential` runs the identical per-seed computation
single-threaded against full graph access; it is the natural oracle
half of plan-vs-distributed differential tests.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro import kernels
from repro.core.api import GMinerApp
from repro.core.task import Task, TaskEnv
from repro.graph.graph import Graph, VertexData
from repro.mining.cost import WorkMeter
from repro.plans.compiler import CompiledStep, ExecutionPlan

PartialImage = Tuple[int, ...]

#: Candidate-set density (estimated candidates / id universe) above
#: which the bitset backend wins a level: bitmap intersection costs
#: ~universe/64 words regardless of set size, array intersection costs
#: ~set size — dense levels favour the former, sparse deep levels the
#: latter.
BITSET_DENSITY_THRESHOLD = 0.05


def select_step_backends(plan: ExecutionPlan, graph: Graph) -> Tuple[str, ...]:
    """Density-driven per-level backend choice (``backend="auto"``).

    Estimates the candidate set entering each step — the average
    adjacency list, thinned by the graph's edge density once per extra
    intersected source — and picks the bitset backend for levels whose
    candidates stay dense in the id universe, the best array backend
    (numpy when importable) for the rest.  Backends are value- and
    work-unit-identical, so the selection can only change wall-clock
    time, never results or charges.
    """
    available = kernels.available_backends()
    array_backend = "numpy" if "numpy" in available else "reference"
    universe = max(1, graph.num_vertices)
    avg = graph.avg_degree()
    density = avg / universe
    selected = []
    for step in plan.steps:
        estimated = avg * density ** (len(step.sources) - 1)
        if "bitset" in available and estimated / universe >= BITSET_DENSITY_THRESHOLD:
            selected.append("bitset")
        else:
            selected.append(array_backend)
    return tuple(selected)


def step_needs_data(step: CompiledStep) -> bool:
    """Whether the step must look at candidate VertexData (labels or
    attributes).  A pure structural count touches only ids."""
    return not (step.counting and step.label is None and not step.predicates)


def _step_candidates(
    partial: PartialImage,
    step: CompiledStep,
    data_of: Callable[[int], VertexData],
) -> Tuple[List[int], int]:
    """Intersected, symmetry-sliced candidate ids for one partial.

    Returns ``(candidates, scanned)`` where ``scanned`` is the metered
    element count (sum of source adjacency lengths).
    """
    arrays = [data_of(partial[q]).neighbors_array() for q in step.sources]
    scanned = sum(len(array) for array in arrays)
    # input-aware candidate direction: start from the smallest list so
    # every later intersection works on the tightest running set
    arrays.sort(key=len)
    result = arrays[0]
    for array in arrays[1:]:
        result = kernels.intersect(result, array)
    if step.greater_than:
        result = kernels.slice_gt(
            result, max(partial[q] for q in step.greater_than)
        )
    return kernels.tolist(result), scanned


def _passes_filters(
    vid: int,
    partial: PartialImage,
    step: CompiledStep,
    data_of: Callable[[int], VertexData],
) -> bool:
    """Injectivity, order bounds, label and predicate checks."""
    if vid in partial:
        return False
    for q in step.less_than:
        if vid >= partial[q]:
            return False
    if step.label is not None or step.predicates:
        data = data_of(vid)
        if step.label is not None and data.label != step.label:
            return False
        for op, value in step.predicates:
            if op == "has-attr" and value not in data.attributes:
                return False
    return True


def seed_admissible(vertex: VertexData, plan: ExecutionPlan) -> bool:
    """Can this vertex host the pattern root?"""
    if plan.root_label is not None and vertex.label != plan.root_label:
        return False
    for op, value in plan.root_predicates:
        if op == "has-attr" and value not in vertex.attributes:
            return False
    return len(vertex.neighbors) >= plan.min_root_degree


class PlanTask(Task):
    """Multi-round task: one plan step per round (cf. ``GMTask``)."""

    def __init__(
        self,
        seed: VertexData,
        plan: ExecutionPlan,
        step_backends: Optional[Tuple[str, ...]] = None,
    ) -> None:
        super().__init__(seed)
        self.plan = plan
        self.step_backends = step_backends
        self.partials: List[PartialImage] = [(seed.vid,)]
        self.known: Dict[int, VertexData] = {seed.vid: seed}
        self.pull(self._needed_for(plan.steps[0]))

    def _needed_for(self, step: CompiledStep) -> Set[int]:
        """Vertices to pull before running ``step``: every potential
        candidate (source-image neighbours) when the step reads vertex
        data; nothing for a fused structural count."""
        if not step_needs_data(step):
            return set()
        needed: Set[int] = set()
        for partial in self.partials:
            for q in step.sources:
                needed.update(self.known[partial[q]].neighbors)
        return needed - set(self.known)

    def split(self) -> Optional[List[Task]]:
        """Recursive task splitting (§9): halve the partial set.

        Counts stay exact because embeddings partition cleanly across
        the children; both continue from the same round.
        """
        if len(self.partials) < 2 or self.round >= len(self.plan.steps):
            return None
        mid = len(self.partials) // 2
        children: List[Task] = []
        for chunk in (self.partials[:mid], self.partials[mid:]):
            child = PlanTask.__new__(PlanTask)
            Task.__init__(child, self.seed)
            child.plan = self.plan
            child.step_backends = self.step_backends
            child.partials = list(chunk)
            child.known = dict(self.known)
            child.round = self.round
            child.pull(child._needed_for(self.plan.steps[self.round]))
            children.append(child)
        return children

    def context_size(self) -> int:
        known_bytes = sum(
            16 + 8 * len(d.neighbors) for d in self.known.values()
        )
        partial_bytes = sum(48 + 8 * len(p) for p in self.partials)
        return partial_bytes + known_bytes

    def update(self, cand_objs: Dict[int, VertexData], env: TaskEnv) -> None:
        # per-level backend selection (backend="auto"): the running
        # round's step may prefer a different set representation; with
        # no selection the ambient backend applies unchanged
        if self.step_backends is not None:
            with kernels.use_backend(self.step_backends[self.round - 1]):
                self._update(cand_objs, env)
        else:
            self._update(cand_objs, env)

    def _update(self, cand_objs: Dict[int, VertexData], env: TaskEnv) -> None:
        self.known.update(cand_objs)
        step = self.plan.steps[self.round - 1]
        data_of = self.known.__getitem__
        if step.counting:
            total = 0
            for partial in self.partials:
                cands, scanned = _step_candidates(partial, step, data_of)
                self.charge(scanned + len(cands))
                total += sum(
                    1 for vid in cands
                    if _passes_filters(vid, partial, step, data_of)
                )
            self.finish(total if total else None)
            return
        extended: List[PartialImage] = []
        for partial in self.partials:
            cands, scanned = _step_candidates(partial, step, data_of)
            self.charge(scanned + len(cands))
            for vid in cands:
                if _passes_filters(vid, partial, step, data_of):
                    extended.append(partial + (vid,))
        if not extended:
            self.finish(None)
            return
        self.partials = extended
        self.subgraph.add_nodes({partial[-1] for partial in extended})
        self.pull(self._needed_for(self.plan.steps[self.round]))


class PlanApp(GMinerApp):
    """Run a compiled plan as a G-Miner application.

    The job value is the total embedding count (symmetry-broken when
    the plan was compiled with ``symmetry="auto"``).
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        step_backends: Optional[Tuple[str, ...]] = None,
    ) -> None:
        self.plan = plan
        #: Per-level kernel backend overrides (``backend="auto"``), one
        #: per plan step; ``None`` leaves the ambient backend alone.
        self.step_backends = (
            tuple(step_backends) if step_backends is not None else None
        )
        if self.step_backends is not None and len(self.step_backends) != len(
            plan.steps
        ):
            raise ValueError(
                f"step_backends must name one backend per plan step "
                f"({len(plan.steps)}); got {len(self.step_backends)}"
            )
        self.name = f"plan:{plan.name}"

    def make_task(self, vertex: VertexData) -> Optional[Task]:
        if not seed_admissible(vertex, self.plan):
            return None
        return PlanTask(vertex, self.plan, self.step_backends)

    def combine_results(self, results: Iterable[Optional[int]]) -> int:
        return sum(r for r in results if r is not None)


def count_plan_sequential(
    plan: ExecutionPlan, graph: Graph, meter: Optional[WorkMeter] = None
) -> int:
    """Single-threaded execution of a plan with full graph access.

    Runs the exact per-seed computation :class:`PlanTask` performs
    (same candidate generation, filters and charging), so its value —
    and, via ``meter``, its work units — must agree with the
    distributed job on any graph.
    """
    meter = meter if meter is not None else WorkMeter()
    data_of = graph.vertex_data
    total = 0
    for vid in sorted(graph.vertices()):
        seed = data_of(vid)
        if not seed_admissible(seed, plan):
            continue
        partials: List[PartialImage] = [(vid,)]
        for step in plan.steps:
            next_partials: List[PartialImage] = []
            count_here = 0
            for partial in partials:
                cands, scanned = _step_candidates(partial, step, data_of)
                meter.charge(scanned + len(cands))
                for cand in cands:
                    if _passes_filters(cand, partial, step, data_of):
                        if step.counting:
                            count_here += 1
                        else:
                            next_partials.append(partial + (cand,))
            if step.counting:
                total += count_here
                break
            partials = next_partials
            if not partials:
                break
    return total
