"""Bitset kernel backend: Python big-int bitmaps for dense sets.

The G²Miner trick for dense neighbourhoods: represent a set of
non-negative integers as one arbitrary-precision int with bit ``i``
set per member.  Intersection is a single ``&`` and counting is one
``bit_count()`` — both C-speed over the whole set, regardless of how
many elements match.  Handles (:class:`BitsetIds`) carry the sorted id
tuple plus a lazily built mask, so the mask cost is paid once per set
and only when a bit-parallel operation actually runs.

Negative ids cannot index bits; any operand containing them falls back
to hash-set evaluation inside the same handle, keeping the backend
value-identical to the reference on every input.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterable, List, Optional, Sequence, Tuple


class BitsetIds:
    """Sorted duplicate-free ids + lazy big-int mask."""

    __slots__ = ("ids", "_mask", "_set")

    def __init__(self, ids: Tuple[int, ...]) -> None:
        self.ids = ids
        self._mask: Optional[int] = None
        self._set: Optional[frozenset] = None

    def __len__(self) -> int:
        return len(self.ids)

    def __iter__(self):
        return iter(self.ids)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BitsetIds({self.ids!r})"

    @property
    def bit_capable(self) -> bool:
        return not self.ids or self.ids[0] >= 0

    @property
    def mask(self) -> int:
        m = self._mask
        if m is None:
            m = 0
            for x in self.ids:
                m |= 1 << x
            self._mask = m
        return m

    @property
    def as_set(self) -> frozenset:
        s = self._set
        if s is None:
            s = frozenset(self.ids)
            self._set = s
        return s


def _decode(mask: int) -> List[int]:
    """Set bit positions of ``mask``, ascending (lowest-bit stripping)."""
    out: List[int] = []
    while mask:
        low = mask & -mask
        out.append(low.bit_length() - 1)
        mask ^= low
    return out


def as_array(seq: Iterable[int]) -> BitsetIds:
    if isinstance(seq, BitsetIds):
        return seq
    t = tuple(seq)
    if not all(t[i] < t[i + 1] for i in range(len(t) - 1)):
        t = tuple(sorted(set(t)))
    return BitsetIds(t)


def tolist(arr: BitsetIds) -> List[int]:
    return list(arr.ids)


def unique_sorted(seq: Iterable[int]) -> BitsetIds:
    return as_array(seq)


def _bit_ok(a: BitsetIds, b: BitsetIds) -> bool:
    return a.bit_capable and b.bit_capable


def intersect(a: BitsetIds, b: BitsetIds) -> BitsetIds:
    if not a.ids or not b.ids:
        return BitsetIds(())
    if _bit_ok(a, b):
        return BitsetIds(tuple(_decode(a.mask & b.mask)))
    common = a.as_set & b.as_set
    return BitsetIds(tuple(x for x in a.ids if x in common))


def intersect_count(a: BitsetIds, b: BitsetIds) -> int:
    if not a.ids or not b.ids:
        return 0
    if _bit_ok(a, b):
        return (a.mask & b.mask).bit_count()
    return len(a.as_set & b.as_set)


def difference(a: BitsetIds, b: BitsetIds) -> BitsetIds:
    if not a.ids or not b.ids:
        return a
    if _bit_ok(a, b):
        return BitsetIds(tuple(_decode(a.mask & ~b.mask)))
    drop = a.as_set & b.as_set
    return BitsetIds(tuple(x for x in a.ids if x not in drop))


def union(a: BitsetIds, b: BitsetIds) -> BitsetIds:
    if not a.ids:
        return b
    if not b.ids:
        return a
    if _bit_ok(a, b):
        return BitsetIds(tuple(_decode(a.mask | b.mask)))
    return BitsetIds(tuple(sorted(a.as_set | b.as_set)))


def contains(hay: BitsetIds, needles: Sequence[int]) -> List[bool]:
    if hay.bit_capable and all(x >= 0 for x in needles):
        m = hay.mask
        return [bool((m >> x) & 1) for x in needles]
    members = hay.as_set
    return [x in members for x in needles]


def slice_gt(arr: BitsetIds, x: int) -> BitsetIds:
    return BitsetIds(arr.ids[bisect_right(arr.ids, x):])


def intersect_count_many(
    arrays: Sequence[Iterable[int]],
    thresholds: Sequence[int],
    target: BitsetIds,
) -> Tuple[int, int]:
    total = 0
    scanned = 0
    target_mask = target.mask if target.bit_capable else None
    for raw, t in zip(arrays, thresholds):
        arr = raw if isinstance(raw, BitsetIds) else as_array(raw)
        scanned += len(arr.ids)
        if target_mask is not None and arr.bit_capable:
            inter = arr.mask & target_mask
            # keep only bits above the threshold; thresholds are vertex
            # ids, so negative means "keep everything"
            total += (inter >> (t + 1)).bit_count() if t >= 0 else inter.bit_count()
        else:
            total += intersect_count(slice_gt(arr, t), slice_gt(target, t))
    return total, scanned
