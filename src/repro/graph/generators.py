"""Seeded synthetic graph generators.

The paper's datasets are web/social graphs with heavy-tailed degree
distributions and high clustering.  Three generators cover the shapes
the experiments need:

* :func:`preferential_attachment_graph` — Holme–Kim style scale-free
  graphs with tunable triangle closure (stands in for social networks
  like Orkut/Friendster: skewed degrees, many triangles/cliques).
* :func:`rmat_graph` — Kronecker-style R-MAT (stands in for web-scale
  sparse graphs like Skitter/BTC: extreme hubs, low clustering).
* :func:`planted_partition_graph` — communities with dense insides and
  sparse cross edges (ground truth for community detection/clustering).

All generators take an explicit ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.graph.attributes import AttributeSpace
from repro.graph.graph import Graph


def preferential_attachment_graph(
    n: int,
    m: int,
    triangle_prob: float = 0.5,
    seed: int = 0,
    max_degree: Optional[int] = None,
) -> Graph:
    """Holme–Kim powerlaw-cluster graph.

    Each new vertex attaches ``m`` edges; after a preferential
    attachment step, with probability ``triangle_prob`` the next edge
    closes a triangle with a neighbor of the previous target.  High
    ``triangle_prob`` yields the clique-rich structure social networks
    show, which is what makes MCF/TC workloads interesting.

    ``max_degree`` caps hub growth.  Real social graphs have a tiny
    max-degree/|V| ratio (Orkut: 33k of 3M ≈ 1%); at our reduced scale
    an uncapped hub would touch a quarter of the graph and one mining
    task would dwarf the whole workload, so capping is *more* faithful
    to the per-task work distribution, not less.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if m < 1:
        raise ValueError("m must be >= 1")
    rng = random.Random(seed)
    m = min(m, max(1, n - 1))
    edges: List[Tuple[int, int]] = []
    # repeated-nodes list implements preferential attachment in O(1)
    repeated: List[int] = []
    adjacency: Dict[int, set] = {v: set() for v in range(n)}

    def saturated(v: int) -> bool:
        return max_degree is not None and len(adjacency[v]) >= max_degree

    def add_edge(u: int, v: int) -> bool:
        if u == v or v in adjacency[u]:
            return False
        adjacency[u].add(v)
        adjacency[v].add(u)
        edges.append((u, v))
        repeated.append(u)
        repeated.append(v)
        return True

    # seed ring of m+1 vertices: keeps early attachment well-defined
    # without planting an artificial giant clique among low IDs
    seed_size = min(m + 1, n)
    for u in range(seed_size):
        add_edge(u, (u + 1) % seed_size)
    if seed_size > 2:
        for u in range(seed_size):
            add_edge(u, (u + 2) % seed_size)

    for new in range(seed_size, n):
        targets: List[int] = []
        last_target: Optional[int] = None
        attempts = 0
        while len(targets) < m and attempts < 50 * m:
            attempts += 1
            candidate: Optional[int] = None
            if (
                last_target is not None
                and rng.random() < triangle_prob
                and adjacency[last_target]
            ):
                candidate = rng.choice(sorted(adjacency[last_target]))
            if candidate is None or candidate == new or candidate in targets:
                candidate = repeated[rng.randrange(len(repeated))]
            if candidate != new and candidate not in targets and not saturated(candidate):
                targets.append(candidate)
                last_target = candidate
        for t in targets:
            add_edge(new, t)
    return Graph.from_edges(edges, vertices=range(n))


def rmat_graph(
    scale: int,
    edge_factor: int = 8,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    max_degree: Optional[int] = None,
) -> Graph:
    """R-MAT graph with ``2**scale`` vertex slots.

    The standard recursive quadrant sampler (Graph500 parameters by
    default).  Duplicate edges and self-loops are dropped; isolated
    slots are dropped too, so ``num_vertices`` is slightly below
    ``2**scale`` as with real R-MAT data.

    ``max_degree`` drops excess edges at oversized hubs; see
    :func:`preferential_attachment_graph` for why capping keeps the
    per-task work distribution faithful at reduced scale.
    """
    if scale < 1:
        raise ValueError("scale must be >= 1")
    d = 1.0 - a - b - c
    if d < 0:
        raise ValueError("a+b+c must be <= 1")
    rng = random.Random(seed)
    n = 1 << scale
    target_edges = edge_factor * n
    degree: Dict[int, int] = {}
    edges: List[Tuple[int, int]] = []
    seen = set()
    for _ in range(target_edges):
        u = v = 0
        for _level in range(scale):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u == v:
            continue
        key = (min(u, v), max(u, v))
        if key in seen:
            continue
        if max_degree is not None and (
            degree.get(u, 0) >= max_degree or degree.get(v, 0) >= max_degree
        ):
            continue
        seen.add(key)
        degree[u] = degree.get(u, 0) + 1
        degree[v] = degree.get(v, 0) + 1
        edges.append((u, v))
    return Graph.from_edges(edges)


def planted_partition_graph(
    num_communities: int,
    community_size: int,
    p_in: float = 0.4,
    p_out: float = 0.01,
    seed: int = 0,
) -> Tuple[Graph, Dict[int, int]]:
    """Planted-partition graph plus the ground-truth community map.

    Returns ``(graph, {vid: community_index})``.  Used by the CD and GC
    applications: communities are dense inside (``p_in``) and sparse
    across (``p_out``), and the dataset registry gives each community
    correlated attributes so attribute filters line up with topology.
    """
    if num_communities < 1 or community_size < 1:
        raise ValueError("need at least one community of size one")
    rng = random.Random(seed)
    n = num_communities * community_size
    membership = {v: v // community_size for v in range(n)}
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        for v in range(u + 1, n):
            p = p_in if membership[u] == membership[v] else p_out
            if rng.random() < p:
                edges.append((u, v))
    return Graph.from_edges(edges, vertices=range(n)), membership


def random_labels(
    graph: Graph,
    alphabet: Sequence[str] = ("a", "b", "c", "d", "e", "f", "g"),
    seed: int = 0,
) -> None:
    """Assign uniform random labels in place (paper §8.2, GM setup)."""
    rng = random.Random(seed)
    for vid in graph.vertices():
        graph.set_label(vid, alphabet[rng.randrange(len(alphabet))])


def random_attributes(
    graph: Graph,
    space: Optional[AttributeSpace] = None,
    seed: int = 0,
    community_map: Optional[Dict[int, int]] = None,
    coherence: float = 0.8,
) -> None:
    """Assign attribute lists in place (paper footnote 7).

    Each vertex gets one value per dimension, uniform in
    ``[1, values_per_dimension]``.  When ``community_map`` is given,
    members of the same community share each dimension's value with
    probability ``coherence``, which plants the attribute-coherent
    communities CD and GC look for.
    """
    space = space or AttributeSpace()
    rng = random.Random(seed)
    community_profiles: Dict[int, List[int]] = {}
    if community_map is not None:
        for community in sorted(set(community_map.values())):
            community_profiles[community] = [
                rng.randint(1, space.values_per_dimension)
                for _ in range(space.dimensions)
            ]
    for vid in graph.vertices():
        attrs = []
        profile = None
        if community_map is not None and vid in community_map:
            profile = community_profiles[community_map[vid]]
        for dim in range(space.dimensions):
            if profile is not None and rng.random() < coherence:
                value = profile[dim]
            else:
                value = rng.randint(1, space.values_per_dimension)
            attrs.append(space.encode(dim, value))
        graph.set_attributes(vid, attrs)
