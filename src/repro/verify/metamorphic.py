"""Metamorphic transformations and result normalisation.

The metamorphic oracle suite (``tests/test_metamorphic.py``) asserts
that mining results are *invariant* under transformations that change
the computation without changing the answer:

* **vertex relabelling** — a random permutation of vertex ids changes
  partitioning, task order and cache behaviour, but the (mapped)
  results must be identical;
* **cluster reshaping** — partition count and worker/core counts
  change where every task runs, not what it computes;
* **fault injection** — per PR 3's exact-results-under-faults
  contract, a failure plan may change the timeline but never the
  result.

This module holds the transformation and normalisation helpers shared
by the test suite and the differential fuzzer (:mod:`repro.verify.fuzz`).
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.graph.graph import Graph

#: Workloads whose result is a plain count — already canonical.
COUNT_WORKLOADS = ("tc", "gm")
#: Workloads returning a list of vertex groups (communities/clusters).
GROUP_WORKLOADS = ("cd", "gc")


def permute_graph(graph: Graph, seed: int) -> Tuple[Graph, Dict[int, int]]:
    """Copy ``graph`` with vertex ids randomly permuted.

    The permutation shuffles the *same* id set, so the universe is
    unchanged but every adjacency list, partition block and task seed
    order is scrambled.  Labels and attributes travel with their
    vertices.  Returns ``(new_graph, mapping)`` with ``mapping`` from
    old id to new id.
    """
    vids = sorted(graph.vertices())
    shuffled = list(vids)
    random.Random(seed).shuffle(shuffled)
    mapping = dict(zip(vids, shuffled))
    edges = [
        (mapping[u], mapping[v])
        for u in vids
        for v in graph.neighbors(u)
        if u < v
    ]
    out = Graph.from_edges(edges, vertices=[mapping[v] for v in vids])
    labels = {mapping[v]: graph.label(v) for v in vids if graph.label(v)}
    if labels:
        out.set_labels(labels)
    attrs = {mapping[v]: graph.attributes(v) for v in vids if graph.attributes(v)}
    if attrs:
        out.set_all_attributes(attrs)
    return out, mapping


def monotone_relabel(
    graph: Graph, stride: int = 3, offset: int = 1001
) -> Tuple[Graph, Dict[int, int]]:
    """Copy ``graph`` with ids remapped order-preservingly.

    ``vid -> offset + stride * rank(vid)`` keeps the *relative* order
    of every pair of vertices while changing every absolute id (and,
    with it, hash partitioning and id-keyed data structures).  This is
    the right relabelling for algorithms that are anchored at minimum
    vertex ids or break ties by id — seed-anchored community growth is
    invariant under order-preserving relabellings but not arbitrary
    permutations.  Returns ``(new_graph, mapping)``.
    """
    vids = sorted(graph.vertices())
    mapping = {v: offset + stride * rank for rank, v in enumerate(vids)}
    edges = [
        (mapping[u], mapping[v])
        for u in vids
        for v in graph.neighbors(u)
        if u < v
    ]
    out = Graph.from_edges(edges, vertices=[mapping[v] for v in vids])
    labels = {mapping[v]: graph.label(v) for v in vids if graph.label(v)}
    if labels:
        out.set_labels(labels)
    attrs = {mapping[v]: graph.attributes(v) for v in vids if graph.attributes(v)}
    if attrs:
        out.set_all_attributes(attrs)
    return out, mapping


def normalize_value(
    workload: str,
    value: Any,
    mapping: Optional[Mapping[int, int]] = None,
) -> Any:
    """Canonicalise a mining result for cross-run comparison.

    ``mapping`` translates vertex ids (e.g. undoing a permutation)
    before canonicalisation.  Counts pass through; the max-clique
    result normalises to its *size* because equally-sized maximum
    cliques are interchangeable; community/cluster lists normalise to
    a sorted list of sorted member tuples.
    """
    if workload in COUNT_WORKLOADS:
        # a run in which no task reported (nothing to count) is the
        # count zero — JobResult.value is None when no results exist
        return value if value is not None else 0
    if workload == "mcf":
        return len(value) if value is not None else 0
    if workload in GROUP_WORKLOADS:
        remap = mapping if mapping is not None else {}
        groups: List[Tuple[int, ...]] = [
            tuple(sorted(remap.get(v, v) for v in group))
            for group in (value or [])
        ]
        return sorted(groups)
    raise ValueError(f"unknown workload {workload!r}")
