"""Table 3 — TC & MCF elapsed time on four graphs across five systems.

Expected shape (paper): G-Miner and the G-thinker-like system succeed
everywhere; Arabesque/Giraph/GraphX fail on most heavy cells; G-Miner
is the fastest system overall."""

from benchmarks.conftest import run_experiment
from repro.bench import experiments


def test_table3_tc_mcf(benchmark):
    report = run_experiment(benchmark, experiments.table3_tc_mcf)
    data = report.data
    for row, systems in data.items():
        assert systems["gminer"].ok, row
        assert systems["gthinker"].ok, row
    failures = sum(
        1
        for systems in data.values()
        for name in ("arabesque", "giraph", "graphx")
        if not systems[name].ok
    )
    assert failures >= 6  # the paper's heavy cells fail
