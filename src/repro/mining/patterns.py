"""Query patterns for graph matching.

The paper's GM application matches a rooted, level-labelled tree
pattern against the data graph (Figure 1): the seed matches the root's
label, each round matches the next level's labels among the candidates,
and the candidates for round ``r+1`` are the data-graph neighbours of
the vertices matched to the level-``r`` pattern nodes that have
children.

A :class:`TreePattern` stores, per level, the list of pattern nodes as
``(label, parent_index_in_previous_level)`` pairs.  Embeddings must map
pattern nodes to *distinct* data vertices whose labels match and whose
parent edges exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class PatternNode:
    """One pattern vertex: its label and its parent's index one level up."""

    label: str
    parent: int = 0


@dataclass(frozen=True)
class TreePattern:
    """A rooted tree pattern described level by level.

    ``levels[0]`` is implicit: the root, with ``root_label``.
    ``levels[r]`` lists the nodes at depth ``r+1``; each node's
    ``parent`` indexes into the previous level (with the root being the
    sole index-0 node of level 0).
    """

    root_label: str
    levels: Tuple[Tuple[PatternNode, ...], ...] = ()

    @property
    def depth(self) -> int:
        """Number of expansion rounds needed (= number of child levels)."""
        return len(self.levels)

    @property
    def num_nodes(self) -> int:
        return 1 + sum(len(level) for level in self.levels)

    def level_nodes(self, round_index: int) -> Tuple[PatternNode, ...]:
        """Pattern nodes to match in round ``round_index`` (1-based)."""
        if not 1 <= round_index <= self.depth:
            raise IndexError(f"round {round_index} out of range 1..{self.depth}")
        return self.levels[round_index - 1]

    def validate(self) -> None:
        prev_size = 1
        for depth, level in enumerate(self.levels, start=1):
            if not level:
                raise ValueError(f"level {depth} is empty")
            for node in level:
                if not 0 <= node.parent < prev_size:
                    raise ValueError(
                        f"level {depth} node {node} has bad parent index"
                    )
            prev_size = len(level)


def make_pattern(root_label: str, *levels: Sequence[Tuple[str, int]]) -> TreePattern:
    """Convenience constructor: ``make_pattern('a', [('b',0),('c',0)], ...)``."""
    built = tuple(
        tuple(PatternNode(label=lbl, parent=parent) for lbl, parent in level)
        for level in levels
    )
    pattern = TreePattern(root_label=root_label, levels=built)
    pattern.validate()
    return pattern


#: The query pattern of the paper's Figure 1 and Table 4: root labelled
#: 'a' with children 'b' and 'c'; the 'c' node has children 'd' and 'e'.
PAPER_PATTERN = make_pattern(
    "a",
    [("b", 0), ("c", 0)],
    [("d", 1), ("e", 1)],
)
